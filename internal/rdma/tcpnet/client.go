package tcpnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/rdma"
)

// errTransient tags connection-level failures that the retry loop may
// transparently recover from; it never escapes the package unwrapped.
var errTransient = errors.New("tcpnet: transient connection failure")

func transient(err error) error { return fmt.Errorf("%w: %v", errTransient, err) }

func isTransient(err error) bool { return errors.Is(err, errTransient) }

// verbs is one process's connection set; it is not safe for concurrent
// use (each spawned process gets its own, as the rdma.Verbs contract
// requires). Traffic to each node is striped over
// Options.ConnsPerNode lazily-dialed connections, rotated once per
// attempt: a doorbell batch stays pipelined on a single connection (as
// it would on one RDMA QP) while successive attempts — and other
// clients — land on different connections and therefore different
// server goroutines. Options are resolved once at creation
// (SetOptions is documented to run before processes spawn).
type verbs struct {
	pl     *Platform
	opt    Options
	groups map[rdma.NodeID]*connGroup
	// lastNode/lastG short-circuit the map lookup for the common case
	// of consecutive ops targeting the same node (batches, retries).
	lastNode rdma.NodeID
	lastG    *connGroup
	epoch    uint64      // attempt counter driving stripe rotation
	order    []*nodeConn // scratch: connections used by the current attempt
	ptrs     []*rdma.Op  // scratch for Batch/Post
	// op/single are the singleton-verb scratch: Read/Write/CAS/FAA
	// build their one op here so the hot path performs zero heap
	// allocations (a local rdma.Op would escape through pend).
	op     rdma.Op
	single [1]*rdma.Op
}

// connGroup is the striped connection set for one node.
type connGroup struct {
	slots []*nodeConn
	was   []bool // slot ever carried a live connection (redial accounting)
	rr    int
	seen  uint64 // epoch the cursor last advanced in
}

// pendEntry is one in-flight request on a connection.
type pendEntry struct {
	seq uint32
	op  *rdma.Op
}

// nodeConn is one striped connection. pend is a FIFO of in-flight
// requests: the server executes a connection's frames strictly in
// order over in-order TCP, so responses arrive as an ordered
// subsequence of requests (chaos-dropped frames are simply skipped).
// The slice is owned by the conn and reused across attempts, so the
// steady state allocates nothing and never hashes.
type nodeConn struct {
	node rdma.NodeID
	slot int
	c    net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
	seq  uint32
	dead bool
	// inAttempt marks the conn as already deadline-armed and enqueued
	// on verbs.order for the current attempt.
	inAttempt bool
	armed     time.Time // deadline currently set on the socket
	pend      []pendEntry
	head      int // first outstanding entry in pend
	// hdr is the frame-header scratch for both directions; the conn is
	// single-goroutine and send/receive phases never overlap, and a
	// struct field (unlike a local array passed through an io interface)
	// does not escape to a fresh heap allocation per frame.
	hdr [hdrSize]byte
}

func newVerbs(pl *Platform) *verbs {
	return &verbs{pl: pl, opt: pl.options(), groups: make(map[rdma.NodeID]*connGroup)}
}

// conn returns a live striped connection to node, advancing the
// round-robin cursor and dialing the slot if needed. Dial failures are
// transient (the node may be restarting) unless the platform knows the
// node has fail-stopped. The whole path is lock-free: topology, failed
// set and options are atomic snapshots.
func (v *verbs) conn(node rdma.NodeID) (*nodeConn, error) {
	g := v.lastG
	if g == nil || v.lastNode != node {
		g = v.groups[node]
		if g == nil {
			n := v.opt.ConnsPerNode
			g = &connGroup{slots: make([]*nodeConn, n), was: make([]bool, n)}
			v.groups[node] = g
		}
		v.lastNode, v.lastG = node, g
	}
	if g.seen != v.epoch {
		g.seen = v.epoch
		g.rr++
		if g.rr >= len(g.slots) {
			g.rr = 0
		}
	}
	if nc := g.slots[g.rr]; nc != nil && !nc.dead {
		return nc, nil
	}
	pl := v.pl
	addr := pl.NodeAddr(node)
	if addr == "" {
		return nil, fmt.Errorf("%w: node %d has no address", rdma.ErrOutOfBounds, node)
	}
	if pl.Failed(node) {
		return nil, fmt.Errorf("%w: node %d fail-stopped", rdma.ErrNodeFailed, node)
	}
	c, err := net.DialTimeout("tcp", addr, v.opt.DialTimeout)
	if err != nil {
		return nil, transient(err)
	}
	pl.ctr.dials.Add(1)
	if g.was[g.rr] {
		pl.ctr.redials.Add(1)
	}
	g.was[g.rr] = true
	pl.conns.add(node, 1)
	nc := &nodeConn{
		node: node, slot: g.rr, c: c,
		br: bufio.NewReaderSize(c, 1<<16),
		bw: bufio.NewWriterSize(c, 1<<16),
	}
	g.slots[g.rr] = nc
	return nc, nil
}

// evict closes and forgets a striped connection (closing prevents the
// fd leak a bare slot clear would cause).
func (v *verbs) evict(nc *nodeConn) {
	if nc.dead {
		return
	}
	nc.dead = true
	nc.c.Close()
	v.pl.conns.add(nc.node, -1)
	if g := v.groups[nc.node]; g != nil && g.slots[nc.slot] == nc {
		g.slots[nc.slot] = nil
	}
}

// armDeadline gives the connection an I/O deadline of now+OpTimeout,
// but only when the currently armed one has drifted more than a
// quarter-timeout stale: refreshing the runtime poller timer on every
// singleton verb costs more than the whole frame encode, and a
// deadline between 0.75 and 1.0 of OpTimeout is equally good at
// bounding a hung exchange.
func (nc *nodeConn) armDeadline(o Options) {
	d := time.Now().Add(o.OpTimeout)
	if d.Sub(nc.armed) > o.OpTimeout/4 {
		nc.c.SetDeadline(d) //nolint:errcheck // surfaced at I/O
		nc.armed = d
	}
}

func (nc *nodeConn) send(op uint8, seq uint32, off uint64, n uint32, payload []byte) error {
	hdr := nc.hdr[:]
	hdr[0] = op
	binary.LittleEndian.PutUint32(hdr[1:5], seq)
	binary.LittleEndian.PutUint64(hdr[5:13], off)
	binary.LittleEndian.PutUint32(hdr[13:17], n)
	if _, err := nc.bw.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) > 0 {
		if _, err := nc.bw.Write(payload); err != nil {
			return err
		}
	}
	return nil
}

// recvHdr reads one response frame header, leaving the n payload bytes
// unread on the stream for the caller to consume or discard.
func (nc *nodeConn) recvHdr(clamp uint32) (status uint8, seq uint32, result uint64, n uint32, err error) {
	hdr := nc.hdr[:]
	if _, err = io.ReadFull(nc.br, hdr[:]); err != nil {
		return 0, 0, 0, 0, err
	}
	n = binary.LittleEndian.Uint32(hdr[13:17])
	if n > clamp {
		// A wire-supplied length beyond any registered region means the
		// stream is broken; fail the connection rather than allocate.
		return 0, 0, 0, 0, fmt.Errorf("tcpnet: oversized frame (%d bytes)", n)
	}
	return hdr[0], binary.LittleEndian.Uint32(hdr[1:5]), binary.LittleEndian.Uint64(hdr[5:13]), n, nil
}

func statusErr(st uint8) error {
	switch st {
	case stOK:
		return nil
	case stErrBounds:
		return rdma.ErrOutOfBounds
	case stErrUnaligned:
		return rdma.ErrUnaligned
	case stErrNoHandler:
		return rdma.ErrNoHandler
	}
	return fmt.Errorf("tcpnet: bad frame (status %d)", st)
}

// sendOp writes one op's request frame under a fresh sequence number.
func (v *verbs) sendOp(nc *nodeConn, op *rdma.Op) (uint32, error) {
	nc.seq++
	seq := nc.seq
	switch op.Kind {
	case rdma.OpRead:
		return seq, nc.send(opRead, seq, op.Addr.Off, uint32(len(op.Buf)), nil)
	case rdma.OpWrite:
		return seq, nc.send(opWrite, seq, op.Addr.Off, uint32(len(op.Buf)), op.Buf)
	case rdma.OpCAS:
		var p [16]byte
		binary.LittleEndian.PutUint64(p[:8], op.Old)
		binary.LittleEndian.PutUint64(p[8:], op.New)
		return seq, nc.send(opCAS, seq, op.Addr.Off, 16, p[:])
	case rdma.OpFAA:
		var p [8]byte
		binary.LittleEndian.PutUint64(p[:], op.New)
		return seq, nc.send(opFAA, seq, op.Addr.Off, 8, p[:])
	}
	return seq, fmt.Errorf("tcpnet: unknown op kind %d", op.Kind)
}

// attempt executes one send/flush/recv round for ops, striping them
// round-robin over each node's connections and pipelining per
// connection. Connection-level failures tag the affected ops with a
// transient error; an op whose response simply never arrives (chaos
// drop) times out with the others on its connection and is retried.
func (v *verbs) attempt(ops []*rdma.Op, o Options) {
	clamp := v.pl.maxFrame()
	v.epoch++
	v.order = v.order[:0]

	// Send phase, round-robin over striped connections; pipelining is
	// preserved per connection.
	for _, op := range ops {
		op.Err = nil
		nc, err := v.conn(op.Addr.Node)
		if err != nil {
			op.Err = err
			continue
		}
		if !nc.inAttempt {
			nc.inAttempt = true
			nc.armDeadline(o)
			v.order = append(v.order, nc)
		}
		seq, err := v.sendOp(nc, op)
		if err != nil {
			op.Err = transient(err)
			v.evict(nc)
			continue
		}
		nc.pend = append(nc.pend, pendEntry{seq: seq, op: op})
	}
	for _, nc := range v.order {
		if nc.dead {
			continue
		}
		if err := nc.bw.Flush(); err != nil {
			v.evict(nc)
		}
	}

	// Receive phase: match responses to ops by sequence number, conn by
	// conn.
	for _, nc := range v.order {
		v.drain(nc, clamp)
		nc.inAttempt = false
	}
}

// drain reads responses on one connection until its pending FIFO is
// empty or the connection fails. READ payloads land directly in the
// op's destination buffer — the receive path never allocates. A
// response whose sequence number is ahead of the FIFO head means the
// server skipped (chaos-dropped) the frames in between: those ops fail
// transient immediately instead of stalling the connection until the
// attempt deadline. A response matching nothing outstanding means the
// stream is broken, and the connection is evicted.
func (v *verbs) drain(nc *nodeConn, clamp uint32) {
	for nc.head < len(nc.pend) && !nc.dead {
		st, seq, result, n, err := nc.recvHdr(clamp)
		if err != nil {
			v.evict(nc)
			break
		}
		// Requests were sent with ascending seqs; skip entries the
		// server never answered.
		for nc.head < len(nc.pend) && nc.pend[nc.head].seq != seq {
			skipped := nc.pend[nc.head].op
			if skipped.Err == nil {
				skipped.Err = transient(fmt.Errorf("request to node %d went unanswered", skipped.Addr.Node))
			}
			nc.head++
		}
		if nc.head == len(nc.pend) {
			v.evict(nc) // response matches no outstanding request
			if n > 0 {
				nc.br.Discard(int(n)) //nolint:errcheck // conn is dead
			}
			break
		}
		op := nc.pend[nc.head].op
		nc.head++
		if st == stOK && op.Kind == rdma.OpRead && n > 0 {
			if int(n) > len(op.Buf) {
				v.evict(nc) // response longer than requested: broken stream
				op.Err = transient(fmt.Errorf("oversized read response from node %d", op.Addr.Node))
				continue
			}
			if _, err := io.ReadFull(nc.br, op.Buf[:n]); err != nil {
				v.evict(nc)
				op.Err = transient(err)
				continue
			}
		} else if n > 0 {
			// A payload we have no use for (error frames carry none
			// today; tolerate it anyway).
			if _, err := nc.br.Discard(int(n)); err != nil {
				v.evict(nc)
				op.Err = transient(err)
				continue
			}
		}
		if e := statusErr(st); e != nil {
			op.Err = e
			continue
		}
		op.Result = result
	}
	for ; nc.head < len(nc.pend); nc.head++ {
		op := nc.pend[nc.head].op
		if op.Err == nil {
			op.Err = transient(fmt.Errorf("connection to node %d lost", op.Addr.Node))
		}
	}
	nc.pend = nc.pend[:0]
	nc.head = 0
}

// run drives ops to completion: transient failures are retried with
// bounded exponential backoff until the retry budget expires, at which
// point they surface as ErrNodeFailed.
func (v *verbs) run(ops []*rdma.Op) {
	o := v.opt
	deadline := time.Now().Add(o.RetryBudget)
	backoff := o.BackoffBase
	pending := ops
	for {
		v.attempt(pending, o)
		retry := pending[:0]
		for _, op := range pending {
			switch {
			case op.Err == nil:
			case isTransient(op.Err):
				retry = append(retry, op)
			case errors.Is(op.Err, rdma.ErrNodeFailed):
				v.pl.ctr.nodeFailures.Add(1)
			}
		}
		if len(retry) == 0 {
			return
		}
		if !time.Now().Before(deadline) {
			for _, op := range retry {
				op.Err = fmt.Errorf("%w: retries exhausted: %v", rdma.ErrNodeFailed, op.Err)
			}
			v.pl.ctr.nodeFailures.Add(uint64(len(retry)))
			return
		}
		v.pl.ctr.retries.Add(uint64(len(retry)))
		time.Sleep(backoff)
		backoff *= 2
		if backoff > o.BackoffMax {
			backoff = o.BackoffMax
		}
		pending = retry
	}
}

func (v *verbs) doOp() {
	v.single[0] = &v.op
	v.run(v.single[:])
}

func (v *verbs) Read(buf []byte, addr rdma.GlobalAddr) error {
	v.op = rdma.Op{Kind: rdma.OpRead, Addr: addr, Buf: buf}
	v.doOp()
	return v.op.Err
}

func (v *verbs) Write(addr rdma.GlobalAddr, data []byte) error {
	v.op = rdma.Op{Kind: rdma.OpWrite, Addr: addr, Buf: data}
	v.doOp()
	return v.op.Err
}

func (v *verbs) CAS(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	v.op = rdma.Op{Kind: rdma.OpCAS, Addr: addr, Old: old, New: new}
	v.doOp()
	return v.op.Result, v.op.Err
}

func (v *verbs) FAA(addr rdma.GlobalAddr, delta uint64) (uint64, error) {
	v.op = rdma.Op{Kind: rdma.OpFAA, Addr: addr, New: delta}
	v.doOp()
	return v.op.Result, v.op.Err
}

// Batch pipelines the ops (all requests written before responses are
// read, striped round-robin over each node's connections), retries
// transient failures, and returns the first error. A tail OpCAS is
// fenced per the rdma.OrderedBatcher contract: it is not issued until
// every preceding op has completed, so a fused commit can never become
// visible while the writes it publishes are still in flight. Within
// one attempt same-node ops already share a FIFO connection, but ops
// to other nodes run concurrently and a transient retry can reorder
// onto a fresh stripe — so TCP pays a second exchange for the fence
// where an RDMA QP (and the simulated fabric) orders the tail for
// free.
func (v *verbs) Batch(ops []rdma.Op) error {
	if n := len(ops); n > 1 && ops[n-1].Kind == rdma.OpCAS {
		err := v.batchRun(ops[:n-1])
		// The tail decides the commit even when a prefix op failed
		// (e.g. a dead parity target): per-op errors are the caller's
		// signal, and holding the CAS back would turn a skipped delta
		// copy into a lost update.
		if tailErr := v.batchRun(ops[n-1:]); err == nil {
			err = tailErr
		}
		return err
	}
	return v.batchRun(ops)
}

// batchRun drives one op list to completion through the retry loop.
func (v *verbs) batchRun(ops []rdma.Op) error {
	if cap(v.ptrs) < len(ops) {
		v.ptrs = make([]*rdma.Op, len(ops))
	}
	ptrs := v.ptrs[:len(ops)]
	for i := range ops {
		ptrs[i] = &ops[i]
	}
	v.run(ptrs)
	for i := range ptrs {
		ptrs[i] = nil // do not retain the caller's ops past the call
	}
	for i := range ops {
		if ops[i].Err != nil {
			return ops[i].Err
		}
	}
	return nil
}

// OrderedBatch implements rdma.OrderedBatcher: Batch fences a tail
// OpCAS behind the completion of every preceding op.
func (v *verbs) OrderedBatch() bool { return true }

var _ rdma.OrderedBatcher = (*verbs)(nil)

// Post implements rdma.Verbs; over TCP an unsignaled post degenerates
// to a synchronous batch (the transport has no completion queues to
// skip).
func (v *verbs) Post(ops []rdma.Op) error { return v.Batch(ops) }

// RPC sends a two-sided request to the daemon on node, with the same
// transparent-reconnect behaviour as the one-sided verbs.
func (v *verbs) RPC(node rdma.NodeID, method uint8, req []byte) ([]byte, error) {
	payload := append([]byte{method}, req...)
	o := v.opt
	deadline := time.Now().Add(o.RetryBudget)
	backoff := o.BackoffBase
	for {
		resp, err := v.rpcOnce(node, payload, o)
		if err == nil || !isTransient(err) {
			if err != nil && errors.Is(err, rdma.ErrNodeFailed) {
				v.pl.ctr.nodeFailures.Add(1)
			}
			return resp, err
		}
		if !time.Now().Before(deadline) {
			v.pl.ctr.nodeFailures.Add(1)
			return nil, fmt.Errorf("%w: retries exhausted: %v", rdma.ErrNodeFailed, err)
		}
		v.pl.ctr.retries.Add(1)
		time.Sleep(backoff)
		backoff *= 2
		if backoff > o.BackoffMax {
			backoff = o.BackoffMax
		}
	}
}

func (v *verbs) rpcOnce(node rdma.NodeID, payload []byte, o Options) ([]byte, error) {
	v.epoch++
	nc, err := v.conn(node)
	if err != nil {
		return nil, err
	}
	nc.armDeadline(o)
	nc.seq++
	seq := nc.seq
	if err := nc.send(opRPC, seq, 0, uint32(len(payload)), payload); err == nil {
		err = nc.bw.Flush()
		if err != nil {
			v.evict(nc)
			return nil, transient(err)
		}
	} else {
		v.evict(nc)
		return nil, transient(err)
	}
	clamp := v.pl.maxFrame()
	for {
		st, rseq, _, n, err := nc.recvHdr(clamp)
		if err != nil {
			v.evict(nc)
			return nil, transient(err)
		}
		if rseq != seq {
			// Stale response from a superseded exchange.
			if n > 0 {
				if _, err := nc.br.Discard(int(n)); err != nil {
					v.evict(nc)
					return nil, transient(err)
				}
			}
			continue
		}
		var resp []byte
		if n > 0 {
			// The response escapes to the caller; RPC is off the verb
			// hot path, so a fresh allocation is fine.
			resp = make([]byte, n)
			if _, err := io.ReadFull(nc.br, resp); err != nil {
				v.evict(nc)
				return nil, transient(err)
			}
		}
		if err := statusErr(st); err != nil {
			return nil, err
		}
		return resp, nil
	}
}

// ctx is the wall-clock process context.
type ctx struct {
	pl   *Platform
	node rdma.NodeID
	*verbs
}

func (c *ctx) Node() rdma.NodeID                { return c.node }
func (c *ctx) Now() time.Duration               { return time.Since(c.pl.start) }
func (c *ctx) Sleep(d time.Duration)            { time.Sleep(d) }
func (c *ctx) UseCPU(core int, d time.Duration) {}
func (c *ctx) LocalMem() []byte                 { return c.pl.Memory(c.node) }
