package tcpnet

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"repro/internal/rdma"
)

// TestStripedAtomicityStress drives >=8 concurrent clients through the
// striped data path (multiple connections per node, many lock stripes)
// and checks linearizability of the results:
//
//   - an FAA counter incremented from every client (some increments
//     batched, some singleton) must land on the exact total;
//   - a CAS word contested by every client must have exactly one
//     winner, and a CAS-ladder word (each client CASes cur -> cur+1 in
//     a retry loop) must equal the number of successful swaps;
//   - disjoint per-client WRITE/READ batches spanning many stripes must
//     always read back what that client last wrote (no torn or
//     interleaved writes across stripe boundaries).
//
// Run under -race this doubles as a data-race check on the striped
// server locks, the striped client connections and the buffer pool.
func TestStripedAtomicityStress(t *testing.T) {
	const (
		clients = 10
		rounds  = 40
		// Per-client region: 8 KB starting at 4 KB, far from the shared
		// words at offset 0..64. 8 KB spans many 64 B stripes.
		regionBytes = 8 * 1024
	)
	pl := NewGroup()
	o := testOptions()
	o.ConnsPerNode = 3
	pl.SetOptions(o)
	id := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20})
	defer pl.Close()
	pl.SetChaos(id, rdma.ChaosConfig{
		Seed:      7,
		DropProb:  0.01,
		DelayProb: 0.02,
		MaxDelay:  200 * time.Microsecond,
		ResetProb: 0.01,
	})

	var (
		faaShared  = rdma.GlobalAddr{Node: id, Off: 0}
		casOnce    = rdma.GlobalAddr{Node: id, Off: 8}
		casLadder  = rdma.GlobalAddr{Node: id, Off: 16}
		onceWins   [clients]int
		ladderWins [clients]int
		wg         sync.WaitGroup
	)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := newVerbs(pl)
			base := uint64(4096 + c*regionBytes)
			wbuf := make([]byte, 512)
			ops := make([]rdma.Op, 0, 17)
			for r := 0; r < rounds; r++ {
				// Disjoint writes: 16 batched 512 B WRITEs tiling the
				// client's region, each stamped with (client, round).
				for i := range wbuf {
					wbuf[i] = byte(c ^ r ^ i)
				}
				ops = ops[:0]
				for i := 0; i < 16; i++ {
					ops = append(ops, rdma.Op{
						Kind: rdma.OpWrite,
						Addr: rdma.GlobalAddr{Node: id, Off: base + uint64(i*512)},
						Buf:  wbuf,
					})
				}
				// The FAA rides in the batch half the time and goes out
				// as a singleton otherwise — both paths must be
				// exactly-once.
				batched := r%2 == 0
				if batched {
					ops = append(ops, rdma.Op{Kind: rdma.OpFAA, Addr: faaShared, New: 1})
				}
				if err := v.Batch(ops); err != nil {
					t.Errorf("client %d round %d batch: %v", c, r, err)
					return
				}
				if !batched {
					if _, err := v.FAA(faaShared, 1); err != nil {
						t.Errorf("client %d round %d faa: %v", c, r, err)
						return
					}
				}
				// Contested one-shot CAS: 0 -> client id+1. Exactly one
				// client across the whole test may win.
				if r == 0 {
					cur, err := v.CAS(casOnce, 0, uint64(c+1))
					if err != nil {
						t.Errorf("client %d cas-once: %v", c, err)
						return
					}
					if cur == 0 {
						onceWins[c]++
					}
				}
				// CAS ladder: read current, try to bump by one; count
				// successes. Total successes must equal the final value.
				cur, err := v.CAS(casLadder, 0, 0) // read via no-op CAS
				if err != nil {
					t.Errorf("client %d cas-read: %v", c, err)
					return
				}
				got, err := v.CAS(casLadder, cur, cur+1)
				if err != nil {
					t.Errorf("client %d cas-ladder: %v", c, err)
					return
				}
				if got == cur {
					ladderWins[c]++
				}
				// Read back this client's region in one batch and check
				// every byte: concurrent traffic on other stripes must
				// not bleed in.
				readOps := make([]rdma.Op, 16)
				rb := make([][]byte, 16)
				for i := range readOps {
					rb[i] = make([]byte, 512)
					readOps[i] = rdma.Op{
						Kind: rdma.OpRead,
						Addr: rdma.GlobalAddr{Node: id, Off: base + uint64(i*512)},
						Buf:  rb[i],
					}
				}
				if err := v.Batch(readOps); err != nil {
					t.Errorf("client %d round %d read batch: %v", c, r, err)
					return
				}
				for i := range rb {
					for j, b := range rb[i] {
						if b != byte(c^r^j) {
							t.Errorf("client %d round %d: region byte %d/%d = %#x, want %#x (torn write)", c, r, i, j, b, byte(c^r^j))
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	pl.SetChaos(id, rdma.ChaosConfig{}) // clear before verification reads

	v := newVerbs(pl)
	read64 := func(a rdma.GlobalAddr) uint64 {
		buf := make([]byte, 8)
		if err := v.Read(buf, a); err != nil {
			t.Fatalf("verify read: %v", err)
		}
		return binary.LittleEndian.Uint64(buf)
	}

	if got, want := read64(faaShared), uint64(clients*rounds); got != want {
		t.Errorf("FAA counter = %d, want %d (lost or double-applied increment)", got, want)
	}
	wins, winner := 0, -1
	for c, w := range onceWins {
		wins += w
		if w > 0 {
			winner = c
		}
	}
	if wins != 1 {
		t.Errorf("contested CAS had %d winners, want exactly 1", wins)
	} else if got, want := read64(casOnce), uint64(winner+1); got != want {
		t.Errorf("contested CAS word = %d, want winner's value %d", got, want)
	}
	ladderTotal := 0
	for _, w := range ladderWins {
		ladderTotal += w
	}
	if got := read64(casLadder); got != uint64(ladderTotal) {
		t.Errorf("CAS ladder = %d, want %d successful swaps", got, ladderTotal)
	}
}

// TestBatchSpansStripesAndNodes checks that one doorbell batch mixing
// nodes, verbs and stripe-crossing ranges completes with per-op
// correctness (batches are not atomic as a unit; each op is).
func TestBatchSpansStripesAndNodes(t *testing.T) {
	pl := NewGroup()
	pl.SetOptions(testOptions())
	a := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 18})
	b := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 18})
	defer pl.Close()

	v := newVerbs(pl)
	big := make([]byte, 3000) // crosses many 64 B stripes
	for i := range big {
		big[i] = byte(i)
	}
	ops := []rdma.Op{
		{Kind: rdma.OpWrite, Addr: rdma.GlobalAddr{Node: a, Off: 100}, Buf: big},
		{Kind: rdma.OpWrite, Addr: rdma.GlobalAddr{Node: b, Off: 200}, Buf: big},
		{Kind: rdma.OpFAA, Addr: rdma.GlobalAddr{Node: a, Off: 0}, New: 5},
		{Kind: rdma.OpCAS, Addr: rdma.GlobalAddr{Node: b, Off: 8}, Old: 0, New: 9},
	}
	if err := v.Batch(ops); err != nil {
		t.Fatal(err)
	}
	for i, node := range []rdma.NodeID{a, b} {
		got := make([]byte, len(big))
		if err := v.Read(got, rdma.GlobalAddr{Node: node, Off: uint64(100 * (i + 1))}); err != nil {
			t.Fatal(err)
		}
		for j := range got {
			if got[j] != big[j] {
				t.Fatalf("node %d byte %d = %#x, want %#x", node, j, got[j], big[j])
			}
		}
	}
	if got, err := v.FAA(rdma.GlobalAddr{Node: a, Off: 0}, 0); err != nil || got != 5 {
		t.Fatalf("FAA word = %d (err %v), want 5", got, err)
	}
	if got, err := v.CAS(rdma.GlobalAddr{Node: b, Off: 8}, 9, 9); err != nil || got != 9 {
		t.Fatalf("CAS word = %d (err %v), want 9", got, err)
	}
}
