package tcpnet

import (
	"encoding/binary"
	"testing"
	"time"

	"repro/internal/rdma"
)

// TestTransportStatsUnderChaos repeats the exactly-once FAA hammer of
// TestChaosFAAExact and checks the transport telemetry saw the faults:
// chaos injections and retries are counted, resets forced redials, and
// the counter still lands on the exact total (no fault was double- or
// under-applied while being counted).
func TestTransportStatsUnderChaos(t *testing.T) {
	pl := NewGroup()
	o := testOptions()
	o.OpTimeout = 50 * time.Millisecond
	pl.SetOptions(o)
	id := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 16})
	defer pl.Close()
	pl.SetChaos(id, rdma.ChaosConfig{
		Seed:      42,
		DropProb:  0.08,
		DelayProb: 0.2,
		MaxDelay:  time.Millisecond,
		ResetProb: 0.08,
	})

	v := newVerbs(pl)
	const incs = 150
	for i := 0; i < incs; i++ {
		if _, err := v.FAA(rdma.GlobalAddr{Node: id, Off: 0}, 1); err != nil {
			t.Fatalf("faa %d under chaos: %v", i, err)
		}
	}
	pl.SetChaos(id, rdma.ChaosConfig{}) // clear
	buf := make([]byte, 8)
	if err := v.Read(buf, rdma.GlobalAddr{Node: id, Off: 0}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf); got != incs {
		t.Fatalf("counter = %d, want %d (chaos double- or under-applied)", got, incs)
	}

	st := pl.TransportStats()
	if st.ChaosDrops+st.ChaosDelays+st.ChaosResets == 0 {
		t.Fatalf("no chaos injections counted: %+v", st)
	}
	if st.Retries == 0 {
		t.Fatalf("chaos run recorded no transport retries: %+v", st)
	}
	if st.Dials == 0 {
		t.Fatalf("no dials counted: %+v", st)
	}
	if st.ChaosResets > 0 && st.Redials == 0 {
		t.Fatalf("connection resets without redials: %+v", st)
	}
	if st.NodeFailures != 0 {
		t.Fatalf("healthy-but-chaotic node declared failed %d times: %+v", st.NodeFailures, st)
	}
}
