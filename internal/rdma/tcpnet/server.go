package tcpnet

import (
	"bufio"
	"encoding/binary"
	"io"
	"net"
	"sync"
	"time"
)

// server executes verbs against one served node's registered region.
// Each accepted connection is served by its own goroutine; atomicity
// across them comes from the striped region locks (see stripedLocks),
// not from serialising connections.
type server struct {
	n     *memNode
	ln    net.Listener
	wg    sync.WaitGroup
	locks *stripedLocks

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newServer(addr string, n *memNode, stripes int) (*server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &server{
		n:     n,
		ln:    ln,
		locks: newStripedLocks(uint64(len(n.mem)), stripes),
		conns: make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

func (s *server) close() {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.connMu.Unlock()
	s.ln.Close()
	s.wg.Wait()
}

// track registers a live connection; it reports false when the server
// is already shutting down.
func (s *server) track(c net.Conn) bool {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *server) untrack(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
}

func (s *server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.n.pl.conns.add(s.n.id, 1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.n.pl.conns.add(s.n.id, -1)
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

func (s *server) serveConn(conn net.Conn) {
	defer conn.Close()
	pool := &s.n.pl.pool
	br := bufio.NewReaderSize(conn, 1<<16)
	bw := bufio.NewWriterSize(conn, 1<<16)
	// Scratches live outside the loop: declared inside, the io
	// interface calls would force one heap escape per frame. atomicBuf
	// holds CAS/FAA operands, which never need a pooled buffer.
	var hdr, rh [hdrSize]byte
	var atomicBuf [16]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return
		}
		op := hdr[0]
		seq := binary.LittleEndian.Uint32(hdr[1:5])
		off := binary.LittleEndian.Uint64(hdr[5:13])
		n := binary.LittleEndian.Uint32(hdr[13:17])
		if n > s.n.pl.maxFrame() {
			return // oversized frame: the stream is broken or hostile
		}
		// Read the request payload — except for WRITE, whose bytes stay
		// on the stream so execution can copy them straight into the
		// region (see writeInline).
		var payload *[]byte
		var req []byte
		switch {
		case op == opCAS || op == opFAA:
			if n > 0 && n <= uint32(len(atomicBuf)) {
				if _, err := io.ReadFull(br, atomicBuf[:n]); err != nil {
					return
				}
				req = atomicBuf[:n]
			} else if n > 0 {
				return // malformed atomic operand: the stream is broken
			}
		case op == opRPC && n > 0:
			payload = pool.get(int(n))
			if _, err := io.ReadFull(br, *payload); err != nil {
				pool.put(payload)
				return
			}
			req = *payload
		}
		if delay, drop, reset := s.n.chaosRoll(); delay > 0 || drop || reset {
			if delay > 0 {
				time.Sleep(delay)
			}
			if reset {
				if payload != nil {
					pool.put(payload)
				}
				// Ack every executed frame before tearing the
				// connection down: with their responses delivered, the
				// client retries only frames that never executed, so
				// injected resets cannot double-apply a batched atomic.
				bw.Flush() //nolint:errcheck // connection is dying
				return     // connection reset before execution
			}
			if drop {
				if payload != nil {
					pool.put(payload)
				}
				// The dropped WRITE's payload is still on the stream.
				if op == opWrite && n > 0 {
					if _, err := br.Discard(int(n)); err != nil {
						return
					}
				}
				// Dropped before execution: flush earlier pipelined
				// responses so only this frame goes unanswered.
				if br.Buffered() == 0 {
					if err := bw.Flush(); err != nil {
						return
					}
				}
				continue
			}
		}
		var err error
		switch op {
		case opRead:
			var handled bool
			handled, err = s.readInline(bw, rh[:], seq, off, int(n))
			if err == nil && !handled {
				err = s.readPooled(bw, rh[:], seq, off, int(n))
			}
		case opWrite:
			err = s.writeInline(br, bw, rh[:], seq, off, int(n))
		default:
			status, result, resp := s.apply(op, off, req)
			if payload != nil {
				pool.put(payload)
			}
			rh[0] = status
			binary.LittleEndian.PutUint32(rh[1:5], seq)
			binary.LittleEndian.PutUint64(rh[5:13], result)
			binary.LittleEndian.PutUint32(rh[13:17], uint32(len(resp)))
			_, err = bw.Write(rh[:])
			if err == nil && len(resp) > 0 {
				_, err = bw.Write(resp)
			}
		}
		if err != nil {
			return
		}
		// Coalesce flushes: only drain the writer once the pipelined
		// request burst is exhausted.
		if br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// readInline serves a READ by copying straight from the region into
// the buffered writer — no pooled intermediate buffer, one copy total.
// It reports handled=false when the response cannot fit the writer's
// buffer in one piece (oversized reads fall back to the pooled path,
// where bufio passes large writes through); a returned error means the
// connection is broken. The stripe locks are held only across the
// in-memory copy: the Available check above guarantees bw.Write cannot
// flush (and therefore cannot block on the socket) while locks are
// held.
func (s *server) readInline(bw *bufio.Writer, rh []byte, seq uint32, off uint64, n int) (bool, error) {
	mem := s.n.mem
	status := stOK
	if off+uint64(n) > uint64(len(mem)) {
		status = stErrBounds
		n = 0
	}
	if hdrSize+n > bw.Available() {
		if err := bw.Flush(); err != nil {
			return true, err
		}
		if hdrSize+n > bw.Available() {
			return false, nil
		}
	}
	rh[0] = status
	binary.LittleEndian.PutUint32(rh[1:5], seq)
	binary.LittleEndian.PutUint64(rh[5:13], 0)
	binary.LittleEndian.PutUint32(rh[13:17], uint32(n))
	if _, err := bw.Write(rh); err != nil {
		return true, err
	}
	if n == 0 {
		return true, nil
	}
	lo, hi := s.locks.rangeIdx(off, n)
	s.locks.lockRange(lo, hi)
	_, err := bw.Write(mem[off : off+uint64(n)])
	s.locks.unlockRange(lo, hi)
	return true, err
}

// readPooled is the READ slow path for responses too large to stage
// inside the writer's buffer: copy the range into a pooled buffer under
// the stripe locks, then stream it out after the locks are released.
func (s *server) readPooled(bw *bufio.Writer, rh []byte, seq uint32, off uint64, n int) error {
	mem := s.n.mem
	pool := &s.n.pl.pool
	out := pool.get(n)
	lo, hi := s.locks.rangeIdx(off, n)
	s.locks.lockRange(lo, hi)
	copy(*out, mem[off:])
	s.locks.unlockRange(lo, hi)
	rh[0] = stOK
	binary.LittleEndian.PutUint32(rh[1:5], seq)
	binary.LittleEndian.PutUint64(rh[5:13], 0)
	binary.LittleEndian.PutUint32(rh[13:17], uint32(n))
	_, err := bw.Write(rh)
	if err == nil {
		_, err = bw.Write(*out)
	}
	pool.put(out)
	return err
}

// writeInline serves a WRITE by copying straight from the read buffer
// into the region — when the payload is fully buffered this is one copy
// with no intermediate allocation, and the ReadFull under the stripe
// locks is a pure memcpy that cannot touch the socket. Payloads still
// in flight fall back to a pooled staging buffer so the socket read
// happens outside the locks.
func (s *server) writeInline(br *bufio.Reader, bw *bufio.Writer, rh []byte, seq uint32, off uint64, n int) error {
	mem := s.n.mem
	status := stOK
	switch {
	case off+uint64(n) > uint64(len(mem)):
		status = stErrBounds
		if n > 0 {
			if _, err := br.Discard(n); err != nil {
				return err
			}
		}
	case n > 0 && br.Buffered() >= n:
		lo, hi := s.locks.rangeIdx(off, n)
		s.locks.lockRange(lo, hi)
		_, err := io.ReadFull(br, mem[off:off+uint64(n)])
		s.locks.unlockRange(lo, hi)
		if err != nil {
			return err
		}
		s.n.observeWrite(off, uint64(n))
	case n > 0:
		pool := &s.n.pl.pool
		p := pool.get(n)
		if _, err := io.ReadFull(br, *p); err != nil {
			pool.put(p)
			return err
		}
		lo, hi := s.locks.rangeIdx(off, n)
		s.locks.lockRange(lo, hi)
		copy(mem[off:], *p)
		s.locks.unlockRange(lo, hi)
		pool.put(p)
		s.n.observeWrite(off, uint64(n))
	}
	rh[0] = status
	binary.LittleEndian.PutUint32(rh[1:5], seq)
	binary.LittleEndian.PutUint64(rh[5:13], 0)
	binary.LittleEndian.PutUint32(rh[13:17], 0)
	_, err := bw.Write(rh)
	return err
}

// apply executes an RPC or atomic verb; READ and WRITE are served by
// the inline paths above. Atomics run under the stripes their word
// overlaps (plus the shared side of the exclusive bracket).
func (s *server) apply(op uint8, off uint64, payload []byte) (uint8, uint64, []byte) {
	if op == opRPC {
		pl := s.n.pl
		pl.mu.Lock()
		h := s.n.handler
		pl.mu.Unlock()
		if h == nil {
			return stErrNoHandler, 0, nil
		}
		if len(payload) < 1 {
			return stErrBadFrame, 0, nil
		}
		resp, _ := h(payload[0], payload[1:])
		return stOK, 0, resp
	}
	// The region slice is stable for the server's lifetime: Fail only
	// drops it after close() has joined every connection goroutine.
	mem := s.n.mem
	switch op {
	case opCAS:
		if off%8 != 0 {
			return stErrUnaligned, 0, nil
		}
		if off+8 > uint64(len(mem)) || len(payload) != 16 {
			return stErrBounds, 0, nil
		}
		old := binary.LittleEndian.Uint64(payload[:8])
		new := binary.LittleEndian.Uint64(payload[8:])
		lo, hi := s.locks.rangeIdx(off, 8)
		s.locks.lockRange(lo, hi)
		cur := binary.LittleEndian.Uint64(mem[off:])
		if cur == old {
			binary.LittleEndian.PutUint64(mem[off:], new)
		}
		s.locks.unlockRange(lo, hi)
		if cur == old {
			s.n.observeWrite(off, 8)
		}
		return stOK, cur, nil
	case opFAA:
		if off%8 != 0 {
			return stErrUnaligned, 0, nil
		}
		if off+8 > uint64(len(mem)) || len(payload) != 8 {
			return stErrBounds, 0, nil
		}
		delta := binary.LittleEndian.Uint64(payload)
		lo, hi := s.locks.rangeIdx(off, 8)
		s.locks.lockRange(lo, hi)
		cur := binary.LittleEndian.Uint64(mem[off:])
		binary.LittleEndian.PutUint64(mem[off:], cur+delta)
		s.locks.unlockRange(lo, hi)
		s.n.observeWrite(off, 8)
		return stOK, cur, nil
	}
	return stErrBadFrame, 0, nil
}
