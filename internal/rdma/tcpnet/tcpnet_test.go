package tcpnet

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rdma"
)

// startDaemon builds one daemon-side platform + cluster on a loopback
// port.
func startDaemon(t *testing.T, cfg core.Config, mn int, placeholder []string) (*Platform, *core.Cluster) {
	t.Helper()
	pl := New(placeholder, rdma.NodeID(mn), true)
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pl.Close)
	return pl, cl
}

func smallCfg() core.Config {
	cfg := core.DefaultConfig()
	cfg.Layout.IndexBytes = 32 << 10
	cfg.Layout.BlockSize = 16 << 10
	cfg.Layout.StripeRows = 12
	cfg.Layout.PoolBlocks = 10
	cfg.CkptInterval = 30 * time.Millisecond
	return cfg
}

// TestRawVerbs exercises the wire protocol directly against one
// daemon.
func TestRawVerbs(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0"}
	pl := New(addrs, 0, true)
	pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20})
	pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20})
	defer pl.Close()
	pl.SetResolvedAddr(0, pl.Addr())
	pl.SetHandler(0, func(method uint8, req []byte) ([]byte, time.Duration) {
		return append([]byte{method + 1}, req...), 0
	})

	v := newVerbs(pl)
	addr := rdma.GlobalAddr{Node: 0, Off: 256}
	if err := v.Write(addr, []byte("over the wire")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 13)
	if err := v.Read(buf, addr); err != nil {
		t.Fatalf("read: %v", err)
	}
	if string(buf) != "over the wire" {
		t.Fatalf("round trip got %q", buf)
	}
	prev, err := v.CAS(rdma.GlobalAddr{Node: 0, Off: 64}, 0, 77)
	if err != nil || prev != 0 {
		t.Fatalf("cas: prev=%d err=%v", prev, err)
	}
	prev, err = v.FAA(rdma.GlobalAddr{Node: 0, Off: 64}, 3)
	if err != nil || prev != 77 {
		t.Fatalf("faa: prev=%d err=%v", prev, err)
	}
	resp, err := v.RPC(0, 9, []byte("ping"))
	if err != nil || !bytes.Equal(resp, []byte("\x0aping")) {
		t.Fatalf("rpc: %q %v", resp, err)
	}
	if err := v.Write(rdma.GlobalAddr{Node: 0, Off: 1 << 20}, []byte{1}); !errors.Is(err, rdma.ErrOutOfBounds) {
		t.Fatalf("oob err = %v", err)
	}
	if _, err := v.CAS(rdma.GlobalAddr{Node: 0, Off: 3}, 0, 1); !errors.Is(err, rdma.ErrUnaligned) {
		t.Fatalf("unaligned err = %v", err)
	}
	// Batched mixed ops.
	ops := []rdma.Op{
		{Kind: rdma.OpWrite, Addr: addr.Add(64), Buf: []byte("batched")},
		{Kind: rdma.OpRead, Addr: addr, Buf: make([]byte, 4)},
		{Kind: rdma.OpFAA, Addr: rdma.GlobalAddr{Node: 0, Off: 64}, New: 1},
	}
	if err := v.Batch(ops); err != nil {
		t.Fatalf("batch: %v", err)
	}
	if string(ops[1].Buf) != "over" || ops[2].Result != 80 {
		t.Fatalf("batch results wrong: %q %d", ops[1].Buf, ops[2].Result)
	}
}

// TestAtomicityUnderConcurrency hammers FAA from many goroutines; the
// final counter must be exact.
func TestAtomicityUnderConcurrency(t *testing.T) {
	addrs := []string{"127.0.0.1:0"}
	pl := New(addrs, 0, true)
	pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 4096})
	defer pl.Close()
	pl.SetResolvedAddr(0, pl.Addr())

	const workers, incs = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := newVerbs(pl)
			for i := 0; i < incs; i++ {
				if _, err := v.FAA(rdma.GlobalAddr{Node: 0, Off: 0}, 1); err != nil {
					t.Errorf("faa: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	v := newVerbs(pl)
	buf := make([]byte, 8)
	if err := v.Read(buf, rdma.GlobalAddr{Node: 0, Off: 0}); err != nil {
		t.Fatal(err)
	}
	if got := binary.LittleEndian.Uint64(buf); got != workers*incs {
		t.Fatalf("counter = %d, want %d", got, workers*incs)
	}
}

// TestFullClusterOverTCP runs a complete 5-daemon Aceso group plus a
// client process over loopback TCP: CRUD, checkpointing rounds and
// block sealing all happen over the real transport.
func TestFullClusterOverTCP(t *testing.T) {
	cfg := smallCfg()
	const n = 5
	placeholder := make([]string, n)
	for i := range placeholder {
		placeholder[i] = "127.0.0.1:0"
	}
	// Boot daemons; collect their bound addresses.
	pls := make([]*Platform, n)
	cls := make([]*core.Cluster, n)
	bound := make([]string, n)
	for i := 0; i < n; i++ {
		pls[i], cls[i] = startDaemon(t, cfg, i, placeholder)
		bound[i] = pls[i].Addr()
		if bound[i] == "" {
			t.Fatalf("daemon %d did not bind", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pls[i].SetResolvedAddr(rdma.NodeID(j), bound[j])
		}
	}
	for i := 0; i < n; i++ {
		cls[i].StartServers()
	}
	cls[0].StartMaster()

	// Client process with its own platform.
	cpl := New(bound, 0, false)
	ccl, err := core.NewCluster(cfg, cpl)
	if err != nil {
		t.Fatal(err)
	}
	cn := cpl.AddComputeNode()
	done := make(chan error, 1)
	ccl.SpawnClient(cn, "tcp-client", func(c *core.Client) {
		const keys = 120
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("tcp-key-%04d", i))
			if err := c.Insert(k, bytes.Repeat([]byte{byte(i)}, 200)); err != nil {
				done <- fmt.Errorf("insert %d: %w", i, err)
				return
			}
		}
		for i := 0; i < keys; i++ {
			k := []byte(fmt.Sprintf("tcp-key-%04d", i))
			v, err := c.Search(k)
			if err != nil || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 200)) {
				done <- fmt.Errorf("search %d: %w", i, err)
				return
			}
		}
		if err := c.Delete([]byte("tcp-key-0000")); err != nil {
			done <- fmt.Errorf("delete: %w", err)
			return
		}
		if _, err := c.Search([]byte("tcp-key-0000")); !errors.Is(err, core.ErrNotFound) {
			done <- fmt.Errorf("deleted key still visible: %v", err)
			return
		}
		done <- nil
	})
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("tcp client timed out")
	}

	// Let a couple of checkpoint rounds land, then verify a hosted
	// checkpoint version advanced (read remotely over the wire).
	time.Sleep(3 * cfg.CkptInterval)
	l := cls[0].L
	v := newVerbs(cpl)
	host := l.CkptHostOf(0, 0)
	slot := l.CkptSlotFor(host, 0)
	buf := make([]byte, 8)
	if err := v.Read(buf, rdma.GlobalAddr{Node: rdma.NodeID(host), Off: l.CkptVersionOff(slot)}); err != nil {
		t.Fatalf("read hosted ckpt version: %v", err)
	}
	if binary.LittleEndian.Uint64(buf) == 0 {
		t.Fatal("differential checkpointing never ran over TCP")
	}
	_ = layout.SlotSize
}
