package tcpnet

import (
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/rdma"
)

// benchBurstMixObs replays the BenchmarkBurstMix 32-op batch shape
// through the obs ctx wrapper, with the span tracer either absent
// (tr == nil: metrics-only, the production default when tracing is
// disabled) or attached at its default 1/64 sampling with a full
// client op bracket per batch. The /off vs /on delta is the tracer's
// hot-path cost; CI gates it at <5% ns/op and 0 allocs/op.
func benchBurstMixObs(b *testing.B, tr *obs.Tracer) {
	pl, id := benchGroup(b, Options{})
	m := obs.NewFabricMetrics()
	b.ReportAllocs()
	b.ResetTimer()
	const clients = 8
	var wg sync.WaitGroup
	per := b.N/(32*clients) + 1
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			inner := &ctx{pl: pl, node: pl.AddComputeNode(), verbs: newVerbs(pl)}
			v := obs.WrapCtxTraced(inner, m, tr)
			ot, _ := v.(obs.OpTracer)
			base := uint64(4096 + c*32*1024)
			shared := rdma.GlobalAddr{Node: id, Off: uint64(8 * (c % 8))}
			ops := make([]rdma.Op, 32)
			bufs := make([][]byte, 31)
			for i := range bufs {
				bufs[i] = make([]byte, 64)
			}
			for i := 0; i < per; i++ {
				if ot != nil {
					ot.OpBegin("get")
				}
				for j := 0; j < 31; j++ {
					kind := rdma.OpRead
					if j%2 == 0 {
						kind = rdma.OpWrite
					}
					ops[j] = rdma.Op{Kind: kind, Addr: rdma.GlobalAddr{Node: id, Off: base + uint64(((i+j)%64)*512)}, Buf: bufs[j]}
				}
				ops[31] = rdma.Op{Kind: rdma.OpFAA, Addr: shared, New: 1}
				err := v.Batch(ops)
				if ot != nil {
					ot.OpEnd(err != nil)
				}
				if err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

func BenchmarkBurstMixObs(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchBurstMixObs(b, nil) })
	b.Run("on", func(b *testing.B) { benchBurstMixObs(b, obs.NewTracer(64, 4096)) })
}
