package tcpnet

import (
	"sync"
	"sync/atomic"

	"repro/internal/rdma"
)

// bufPool is a sync.Pool of payload buffers shared by the platform's
// servers and verbs instances, so the steady-state frame hot path
// reuses backing arrays instead of allocating per frame. The counters
// feed rdma.TransportStats: a healthy hot path shows gets ≈ puts with
// allocs (pool misses plus capacity growth) flat after warm-up.
type bufPool struct {
	p                 sync.Pool
	gets, puts, grows atomic.Uint64
}

// get returns a buffer of length n (capacity may exceed n). The caller
// must put it back exactly once when done.
func (bp *bufPool) get(n int) *[]byte {
	bp.gets.Add(1)
	b, _ := bp.p.Get().(*[]byte)
	if b == nil {
		b = new([]byte)
	}
	if cap(*b) < n {
		bp.grows.Add(1)
		*b = make([]byte, n)
	}
	*b = (*b)[:n]
	return b
}

// put returns a buffer to the pool.
func (bp *bufPool) put(b *[]byte) {
	bp.puts.Add(1)
	bp.p.Put(b)
}

func (bp *bufPool) stats() (gets, puts, allocs uint64) {
	return bp.gets.Load(), bp.puts.Load(), bp.grows.Load()
}

// connTracker gauges open transport connections per node: client-side
// striped connections count against their target node, server-side
// accepted connections against the served node. It is touched only on
// dial/accept/close, never per verb.
type connTracker struct {
	mu     sync.Mutex
	byNode map[rdma.NodeID]int64
}

func (t *connTracker) add(node rdma.NodeID, d int64) {
	t.mu.Lock()
	if t.byNode == nil {
		t.byNode = make(map[rdma.NodeID]int64)
	}
	t.byNode[node] += d
	t.mu.Unlock()
}

// snapshot returns the total open-connection count and a per-node copy
// (nil when no connection was ever tracked).
func (t *connTracker) snapshot() (uint64, map[rdma.NodeID]uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.byNode == nil {
		return 0, nil
	}
	var total uint64
	out := make(map[rdma.NodeID]uint64, len(t.byNode))
	for n, c := range t.byNode {
		if c > 0 {
			out[n] = uint64(c)
			total += uint64(c)
		}
	}
	return total, out
}
