// Package rdma defines the one-sided verb abstraction that Aceso and
// the FUSEE baseline are written against: remote READ/WRITE, atomic
// CAS/FAA on 8-byte words, doorbell-batched operation lists, and a
// UD-style RPC channel to memory-node servers.
//
// Two fabrics implement the abstraction: rdma/simnet (a deterministic
// simulated network with an explicit NIC/CPU cost model, used by all
// benchmarks) and rdma/tcpnet (a real TCP transport, used by the
// daemon, CLI and examples). Store code cannot tell them apart.
package rdma

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// NodeID identifies a physical node (compute or memory) on the fabric.
type NodeID uint16

// GlobalAddr is an address in the disaggregated memory pool: a node and
// a byte offset into that node's registered memory region.
type GlobalAddr struct {
	Node NodeID
	Off  uint64
}

// Add returns the address displaced by d bytes.
func (a GlobalAddr) Add(d uint64) GlobalAddr { return GlobalAddr{a.Node, a.Off + d} }

func (a GlobalAddr) String() string { return fmt.Sprintf("mn%d+0x%x", a.Node, a.Off) }

// Errors returned by verb implementations.
var (
	// ErrNodeFailed reports that the target node has fail-stopped; its
	// memory contents are lost.
	ErrNodeFailed = errors.New("rdma: target node failed")
	// ErrOutOfBounds reports an access outside the registered region.
	ErrOutOfBounds = errors.New("rdma: access out of registered region")
	// ErrUnaligned reports an atomic on a non-8-byte-aligned address.
	ErrUnaligned = errors.New("rdma: atomic on unaligned address")
	// ErrNoHandler reports an RPC to a node with no registered server.
	ErrNoHandler = errors.New("rdma: no RPC handler on target node")
)

// OpKind distinguishes entries of a doorbell-batched operation list.
type OpKind uint8

// Operation kinds.
const (
	OpRead OpKind = iota
	OpWrite
	OpCAS
	OpFAA
)

// Op is one entry in a doorbell-batched list. The batch is posted with
// a single doorbell (one client-NIC message) and the entries execute
// concurrently; Verbs.Batch returns when the last completion arrives.
type Op struct {
	Kind OpKind
	Addr GlobalAddr
	// Buf is the local buffer: destination for OpRead, source for
	// OpWrite. Unused by atomics.
	Buf []byte
	// Old and New are the compare/swap values for OpCAS; New is the
	// addend for OpFAA.
	Old, New uint64
	// Result receives the fetched previous value for OpCAS and OpFAA.
	Result uint64
	// Err receives a per-op error (e.g. target failed mid-batch).
	Err error
}

// Verbs is the one-sided operation set available to a client or
// memory-node server process. Implementations are not safe for
// concurrent use by multiple processes; each process dials its own.
//
// Reliability contract: transient transport faults (a dropped frame, a
// reset connection, a restarting server) are retried transparently
// within a bounded backoff budget; only a node that stays unreachable
// past the budget — or is known fail-stopped — surfaces as
// ErrNodeFailed. Retries give at-least-once semantics: an operation
// whose connection died after the request was flushed may execute
// twice. READ/WRITE are idempotent; CAS/FAA re-execution is possible
// only in that narrow window (injected chaos faults are applied before
// execution and never re-execute — see ChaosConfig). This holds for
// batched atomics too: a partially-completed batch retries only the
// ops that never reported a result, so a CAS/FAA inside a Batch has
// the same exactly-once-under-injected-faults guarantee as a
// singleton.
type Verbs interface {
	// Read copies len(buf) bytes from addr into buf.
	Read(buf []byte, addr GlobalAddr) error
	// Write copies data to addr.
	Write(addr GlobalAddr, data []byte) error
	// CAS atomically compares the 8-byte word at addr with old and, if
	// equal, writes new. It returns the previous value; the swap
	// succeeded iff prev == old.
	CAS(addr GlobalAddr, old, new uint64) (prev uint64, err error)
	// FAA atomically adds delta to the 8-byte word at addr and returns
	// the previous value.
	FAA(addr GlobalAddr, delta uint64) (prev uint64, err error)
	// Batch posts ops as one doorbell-batched list and waits for all
	// completions. Per-op failures are stored in Op.Err; Batch returns
	// the first non-nil one (after completing the rest).
	//
	// Fabrics implementing OrderedBatcher additionally honour the
	// fused-commit contract: an OpCAS in the tail position executes
	// only after every preceding op in the list has completed at its
	// target, and returns its fetched value in Op.Result. See
	// OrderedBatcher for the exact guarantee.
	Batch(ops []Op) error
	// Post issues ops unsignaled (selective signaling, §3.5.2 of the
	// paper): the caller pays only the doorbell cost and does not wait
	// for remote completion. Use for fire-and-forget repairs whose
	// results are never read (length-hint fixes, invalidation stamps).
	Post(ops []Op) error
	// RPC sends req to the server process on node and waits for its
	// response (two-sided, UD-style).
	RPC(node NodeID, method uint8, req []byte) ([]byte, error)
}

// Handler is a memory-node server's RPC dispatch function. It must be
// quick and purely local (the paper's MN servers only do coarse-grained
// management); it returns the response and the CPU time the request
// consumed on the node's RPC core, which simulated fabrics charge to
// that core.
type Handler func(method uint8, req []byte) (resp []byte, cpu time.Duration)

// Ctx is the execution context handed to every spawned process: a
// virtual (or wall) clock, the process's verb connection, and access to
// the local node's CPU cores for charging background-work costs.
type Ctx interface {
	Verbs
	// Node returns the node this process runs on.
	Node() NodeID
	// Now returns the current time (virtual on simulated fabrics).
	Now() time.Duration
	// Sleep suspends the process for d.
	Sleep(d time.Duration)
	// UseCPU charges d of work to the local node's CPU core (queueing
	// behind other users of that core). On real fabrics it is a no-op:
	// the work itself takes real time.
	UseCPU(core int, d time.Duration)
	// LocalMem returns the local node's registered memory region (the
	// MN server process manipulates its own pool memory directly, as a
	// server thread on the paper's memory nodes does). It is nil on
	// compute nodes.
	LocalMem() []byte
}

// MemNodeConfig sizes a memory node.
type MemNodeConfig struct {
	// MemBytes is the size of the registered memory region.
	MemBytes uint64
	// CPUCores is the number of server cores (the paper assigns 4: RPC
	// serving, erasure coding, checkpoint send, checkpoint receive).
	CPUCores int
}

// Platform abstracts a cluster substrate: it creates nodes, spawns
// processes on them, and injects fail-stop failures. simnet.Platform
// and tcpnet.Platform implement it.
type Platform interface {
	// AddMemNode registers a memory node and returns its id.
	AddMemNode(cfg MemNodeConfig) NodeID
	// AddComputeNode registers a compute node (no memory region).
	AddComputeNode() NodeID
	// SetHandler installs the RPC server function for a memory node.
	SetHandler(node NodeID, h Handler)
	// Spawn starts fn as a process on node. On simulated fabrics the
	// process participates in virtual time.
	Spawn(node NodeID, name string, fn func(Ctx))
	// Fail fail-stops a node: its memory contents are lost and all
	// verbs targeting it return ErrNodeFailed.
	Fail(node NodeID)
	// Memory returns the registered memory region of a node when it is
	// locally accessible (always on the simulated fabric; only for the
	// daemon's own node on distributed fabrics), else nil. Server
	// processes use it for direct local-memory access.
	Memory(node NodeID) []byte
	// MemMutex returns a locker that serialises direct local-memory
	// access with the fabric's remote-verb executor for the node.
	// Simulated fabrics return a no-op locker (their scheduler already
	// serialises everything); the TCP fabric returns the verb
	// executor's region lock.
	MemMutex(node NodeID) sync.Locker
}

// ChaosConfig parameterises probabilistic fault injection on a fabric
// node. All probabilities are per verb/RPC frame and independent; the
// injection sequence is fully determined by Seed, so a chaotic run can
// be replayed. Faults are injected *before* the target executes the
// operation, so a dropped or reset request was never applied and is
// always safe to retry — only a genuine connection loss mid-exchange
// leaves an operation's effect ambiguous (see the Verbs retry notes).
type ChaosConfig struct {
	// Seed seeds the node's chaos RNG. The same seed yields the same
	// fault sequence for the same frame sequence.
	Seed int64
	// DropProb is the probability a request frame is silently dropped
	// (no response; the client times out and retries).
	DropProb float64
	// DelayProb is the probability a request is delayed by a uniform
	// random duration in (0, MaxDelay] before execution.
	DelayProb float64
	// MaxDelay bounds injected delays.
	MaxDelay time.Duration
	// ResetProb is the probability the connection carrying the request
	// is reset (closed) instead of answering.
	ResetProb float64
}

// Enabled reports whether the config injects any fault at all.
func (c ChaosConfig) Enabled() bool {
	return c.DropProb > 0 || c.DelayProb > 0 || c.ResetProb > 0
}

// FaultInjector is the runtime fault-injection surface of a Platform:
// fail-stop crashes plus seedable probabilistic chaos. Both fabrics
// implement it; harnesses type-assert a Platform to reach it.
type FaultInjector interface {
	// Fail fail-stops a node (same contract as Platform.Fail).
	Fail(node NodeID)
	// Failed reports whether a node has fail-stopped.
	Failed(node NodeID) bool
	// SetChaos installs (or, with a zero config, clears) chaos on a
	// node this process serves. Remote nodes are configured through
	// their own daemons (see core's admin RPCs).
	SetChaos(node NodeID, cfg ChaosConfig)
}

// TransportStats is a snapshot of the fault/retry machinery inside a
// fabric's transport layer: work that happens below the Verbs surface
// (transparent reconnects, per-verb retries, chaos injections) and is
// therefore invisible to any wrapper around Verbs. Fabrics without a
// given mechanism leave its counters zero.
type TransportStats struct {
	// Dials counts TCP connections established (first dials and
	// reconnects after a drop).
	Dials uint64
	// Redials counts only re-establishments of a previously working
	// connection (a subset of Dials).
	Redials uint64
	// Retries counts verb/RPC attempts repeated after a transport
	// fault (timeout, reset, dial failure) within the retry budget.
	Retries uint64
	// NodeFailures counts operations that exhausted the retry budget
	// or targeted a known-failed node and surfaced ErrNodeFailed.
	NodeFailures uint64
	// ChaosDrops, ChaosDelays and ChaosResets count faults injected by
	// an installed ChaosConfig on nodes this process serves.
	ChaosDrops  uint64
	ChaosDelays uint64
	ChaosResets uint64
	// OpenConns gauges transport connections currently open (client
	// stripes plus server-side accepted connections), with a per-node
	// breakdown in OpenConnsByNode (nil when the fabric does not track
	// connections).
	OpenConns       uint64
	OpenConnsByNode map[NodeID]uint64
	// PoolGets/PoolPuts/PoolAllocs count frame-buffer pool traffic:
	// checkouts, returns, and pool misses that had to allocate or grow a
	// backing array. A healthy hot path shows gets ≈ puts with allocs
	// flat after warm-up.
	PoolGets   uint64
	PoolPuts   uint64
	PoolAllocs uint64
}

// Add accumulates other into s.
func (s *TransportStats) Add(other TransportStats) {
	s.Dials += other.Dials
	s.Redials += other.Redials
	s.Retries += other.Retries
	s.NodeFailures += other.NodeFailures
	s.ChaosDrops += other.ChaosDrops
	s.ChaosDelays += other.ChaosDelays
	s.ChaosResets += other.ChaosResets
	s.OpenConns += other.OpenConns
	if len(other.OpenConnsByNode) > 0 {
		if s.OpenConnsByNode == nil {
			s.OpenConnsByNode = make(map[NodeID]uint64, len(other.OpenConnsByNode))
		}
		for n, c := range other.OpenConnsByNode {
			s.OpenConnsByNode[n] += c
		}
	}
	s.PoolGets += other.PoolGets
	s.PoolPuts += other.PoolPuts
	s.PoolAllocs += other.PoolAllocs
}

// TransportStatsSource is implemented by fabrics that maintain
// transport-level counters. Observability layers type-assert a
// Platform to reach it, exactly like FaultInjector.
type TransportStatsSource interface {
	// TransportStats returns a consistent-enough snapshot of the
	// counters (individual fields are read atomically).
	TransportStats() TransportStats
}

// WriteObserver is implemented by fabrics that can report remote
// mutations of a memory node's registered region: one-sided WRITEs,
// successful CAS swaps and FAA updates. The MN server installs an
// observer to track dirty checkpoint segments at the source instead of
// diffing the whole index every round. Store code type-asserts a
// Platform to reach it, exactly like FaultInjector.
type WriteObserver interface {
	// SetWriteObserver installs fn (or, with nil, clears it) on a node
	// this process serves. fn is called with the byte range [off,
	// off+n) after each remote mutation lands; it may run on fabric
	// executor goroutines concurrently with anything, so it must be
	// fast, non-blocking and internally synchronised (atomic bitmap
	// updates). It returns whether an observer is actually wired up —
	// wrappers that cannot reach a WriteObserver underneath return
	// false, and callers must then fall back to treating everything as
	// dirty.
	SetWriteObserver(node NodeID, fn func(off, n uint64)) bool
}

// LocalAtomics is implemented by fabrics that let a process serving a
// memory node mutate small words of that node's registered region
// atomically with respect to concurrently executing remote verbs. The
// MN server uses it to maintain per-bucket version words from inside
// its write observer: the bump must land before the triggering verb's
// response is released, which rules out issuing a remote FAA (the
// observer may not block on the fabric) and rules out a plain store
// (verb executors read the same bytes under their own locking). Store
// code type-asserts a Platform to reach it, exactly like FaultInjector.
type LocalAtomics interface {
	// LocalAdd64 returns a function that adds delta to the 8-byte
	// little-endian word at off within node's region, synchronised
	// with the fabric's remote-verb execution (on lock-based fabrics
	// the add runs under the same region locks as a remote FAA; on
	// engine-serialised fabrics a plain read-modify-write suffices).
	// The returned function is safe to call from a write-observer
	// callback. It returns nil when node is not served by this
	// process.
	LocalAdd64(node NodeID) func(off, delta uint64)
}

// VirtualTime marks a Platform whose processes run in simulated time:
// Ctx.Sleep advances an engine clock instead of the wall clock, so a
// poll-based worker process costs nothing while idle. Wall-clock
// fabrics do not implement it — there an idle 5 µs sleep-poll loop
// burns a real core, so sim-core accounting pools (checkpoint and
// erasure workers) must stay inert and let goroutine pools provide
// the parallelism instead. Core code type-asserts a Platform to reach
// it, exactly like FaultInjector.
type VirtualTime interface {
	// VirtualTime reports whether the platform's clock is simulated.
	VirtualTime() bool
}

// IsVirtual reports whether pl runs its processes in virtual time.
func IsVirtual(pl Platform) bool {
	v, ok := pl.(VirtualTime)
	return ok && v.VirtualTime()
}

// OrderedBatcher marks a Verbs implementation whose doorbell batches
// support a fused commit: a trailing OpCAS in a Batch list executes
// only after every preceding op in the list has completed at its
// target node, and the CAS's fetched value is returned in Op.Result.
// This is the same-QP ordering argument of RDMA hardware — writes
// posted before a later atomic on one connection drain first — lifted
// to the multi-node batch the client actually posts: the fabric must
// not let the commit point become visible while any of the writes it
// publishes are still in flight.
//
// Per-op failures remain possible (injected chaos, a target that
// fail-stops mid-batch): an earlier op may carry Op.Err while the tail
// CAS still executed and committed. Callers own that window — the core
// client repairs a lost KV write after a committed CAS and treats an
// errored or lost-race CAS exactly like today's two-phase lost race
// (invalidate + retry). Ops in non-tail positions keep Batch's normal
// concurrent semantics.
//
// Clients type-assert their Ctx to this (via IsOrderedBatch) and fall
// back to the two-phase {place batch; commit CAS} shape when the
// fabric cannot order the tail.
type OrderedBatcher interface {
	// OrderedBatch reports whether Batch honours the fused-commit
	// tail-CAS ordering contract above.
	OrderedBatch() bool
}

// IsOrderedBatch reports whether v honours the fused-commit ordering
// contract for a tail OpCAS in a Batch.
func IsOrderedBatch(v Verbs) bool {
	ob, ok := v.(OrderedBatcher)
	return ok && ob.OrderedBatch()
}

// NopLocker is a no-op sync.Locker for fabrics whose scheduling
// already serialises memory access.
type NopLocker struct{}

// Lock implements sync.Locker.
func (NopLocker) Lock() {}

// Unlock implements sync.Locker.
func (NopLocker) Unlock() {}

// CPU core roles on a memory node, matching the paper's assignment
// (§4.1): one core each for RPC serving, erasure coding, checkpoint
// sending and checkpoint receiving. Checkpoint compression workers,
// when configured, occupy additional cores starting at NumMNCores
// (see CoreCkptWorker).
const (
	CoreRPC = iota
	CoreErasure
	CoreCkptSend
	CoreCkptRecv
	NumMNCores
)

// CoreCkptWorker returns the core index of the i-th checkpoint
// compression worker. Worker cores sit after the four fixed roles, so
// a node that runs w workers is sized with NumMNCores+w CPU cores and
// simulated fabrics charge worker compression as real per-core
// contention.
func CoreCkptWorker(i int) int { return NumMNCores + i }

// CoreECWorker returns the core index of the i-th erasure worker on a
// node running ckptWorkers checkpoint workers: erasure worker cores
// sit after the fixed roles and the checkpoint pool, so a node sized
// with NumMNCores+ckptWorkers+ecWorkers cores charges banded erasure
// kernels as real per-core contention alongside compression.
func CoreECWorker(ckptWorkers, i int) int { return NumMNCores + ckptWorkers + i }
