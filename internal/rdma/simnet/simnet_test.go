package simnet

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/rdma"
)

func testPlatform() (*Platform, rdma.NodeID, rdma.NodeID) {
	pl := New(DefaultConfig())
	mn := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20, CPUCores: rdma.NumMNCores})
	cn := pl.AddComputeNode()
	return pl, mn, cn
}

func TestReadWriteRoundTrip(t *testing.T) {
	pl, mn, cn := testPlatform()
	var got []byte
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		if err := c.Write(rdma.GlobalAddr{Node: mn, Off: 128}, []byte("hello disaggregated world")); err != nil {
			t.Errorf("write: %v", err)
		}
		got = make([]byte, 25)
		if err := c.Read(got, rdma.GlobalAddr{Node: mn, Off: 128}); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	pl.Engine().RunUntilIdle()
	if !bytes.Equal(got, []byte("hello disaggregated world")) {
		t.Fatalf("round trip got %q", got)
	}
}

func TestCASSemantics(t *testing.T) {
	pl, mn, cn := testPlatform()
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		addr := rdma.GlobalAddr{Node: mn, Off: 64}
		prev, err := c.CAS(addr, 0, 42)
		if err != nil || prev != 0 {
			t.Errorf("first CAS: prev=%d err=%v", prev, err)
		}
		prev, err = c.CAS(addr, 0, 99) // stale expectation fails
		if err != nil || prev != 42 {
			t.Errorf("stale CAS: prev=%d err=%v, want prev=42", prev, err)
		}
		prev, err = c.CAS(addr, 42, 99)
		if err != nil || prev != 42 {
			t.Errorf("second CAS: prev=%d err=%v", prev, err)
		}
		prev, err = c.FAA(addr, 1)
		if err != nil || prev != 99 {
			t.Errorf("FAA: prev=%d err=%v", prev, err)
		}
	})
	pl.Engine().RunUntilIdle()
}

func TestCASUnaligned(t *testing.T) {
	pl, mn, cn := testPlatform()
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		_, err := c.CAS(rdma.GlobalAddr{Node: mn, Off: 3}, 0, 1)
		if !errors.Is(err, rdma.ErrUnaligned) {
			t.Errorf("err = %v, want ErrUnaligned", err)
		}
	})
	pl.Engine().RunUntilIdle()
}

func TestOutOfBounds(t *testing.T) {
	pl, mn, cn := testPlatform()
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		err := c.Write(rdma.GlobalAddr{Node: mn, Off: 1 << 20}, []byte{1})
		if !errors.Is(err, rdma.ErrOutOfBounds) {
			t.Errorf("err = %v, want ErrOutOfBounds", err)
		}
	})
	pl.Engine().RunUntilIdle()
}

func TestFailedNodeErrors(t *testing.T) {
	pl, mn, cn := testPlatform()
	pl.Fail(mn)
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		buf := make([]byte, 8)
		if err := c.Read(buf, rdma.GlobalAddr{Node: mn}); !errors.Is(err, rdma.ErrNodeFailed) {
			t.Errorf("read err = %v, want ErrNodeFailed", err)
		}
		if _, err := c.RPC(mn, 1, nil); !errors.Is(err, rdma.ErrNodeFailed) {
			t.Errorf("rpc err = %v, want ErrNodeFailed", err)
		}
	})
	pl.Engine().RunUntilIdle()
}

func TestRPCRoundTrip(t *testing.T) {
	pl, mn, cn := testPlatform()
	pl.SetHandler(mn, func(method uint8, req []byte) ([]byte, time.Duration) {
		return append([]byte{method}, req...), time.Microsecond
	})
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		resp, err := c.RPC(mn, 7, []byte("ping"))
		if err != nil {
			t.Errorf("rpc: %v", err)
			return
		}
		if !bytes.Equal(resp, []byte("\x07ping")) {
			t.Errorf("resp = %q", resp)
		}
	})
	pl.Engine().RunUntilIdle()
	if u := pl.CoreUtilization(mn, rdma.CoreRPC); u <= 0 {
		t.Fatalf("RPC core utilization = %v, want > 0", u)
	}
}

// TestSmallOpLatency checks the latency model: a small read should cost
// roughly 2 propagation delays plus 2 message costs.
func TestSmallOpLatency(t *testing.T) {
	pl, mn, cn := testPlatform()
	var lat time.Duration
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		buf := make([]byte, 8)
		start := c.Now()
		if err := c.Read(buf, rdma.GlobalAddr{Node: mn}); err != nil {
			t.Errorf("read: %v", err)
		}
		lat = c.Now() - start
	})
	pl.Engine().RunUntilIdle()
	cfg := DefaultConfig()
	min := 2*cfg.PropDelay + 2*cfg.MsgCost
	if lat < min || lat > min+time.Microsecond {
		t.Fatalf("latency = %v, want ~%v", lat, min)
	}
}

// TestBandwidthBound checks that large transfers are dominated by wire
// time: 7 MB at 7 GB/s should take about 1 ms.
func TestBandwidthBound(t *testing.T) {
	pl, mn, cn := testPlatform()
	var lat time.Duration
	payload := make([]byte, 700_000)
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		start := c.Now()
		if err := c.Write(rdma.GlobalAddr{Node: mn}, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		lat = c.Now() - start
	})
	pl.Engine().RunUntilIdle()
	if lat < 100*time.Microsecond || lat > 120*time.Microsecond {
		t.Fatalf("latency = %v, want ~100us wire time", lat)
	}
}

// TestIOPSContention checks that many concurrent small ops against one
// MN serialize at the NIC message rate rather than the wire rate.
func TestIOPSContention(t *testing.T) {
	pl, mn, _ := testPlatform()
	const clients, opsEach = 16, 100
	done := 0
	for i := 0; i < clients; i++ {
		cn := pl.AddComputeNode()
		pl.Spawn(cn, "client", func(c rdma.Ctx) {
			addr := rdma.GlobalAddr{Node: mn, Off: uint64(c.Node()) * 8}
			for k := 0; k < opsEach; k++ {
				if _, err := c.FAA(addr, 1); err != nil {
					t.Errorf("faa: %v", err)
					return
				}
			}
			done++
		})
	}
	pl.Engine().RunUntilIdle()
	if done != clients {
		t.Fatalf("done = %d, want %d", done, clients)
	}
	// 1600 atomics * (500ns RNIC atomic + ~1ns wire) ≈ 800us of MN NIC
	// busy time; elapsed should be close to that, not 1600 * RTT (no
	// pipelining loss).
	elapsed := pl.Engine().Now()
	if elapsed < 800*time.Microsecond || elapsed > 1200*time.Microsecond {
		t.Fatalf("elapsed = %v, want MN-NIC-atomic-bound ~800us-1.2ms", elapsed)
	}
}

func TestBatchCheaperThanSequential(t *testing.T) {
	run := func(batched bool) time.Duration {
		pl, mn, cn := testPlatform()
		mn2 := pl.AddMemNode(rdma.MemNodeConfig{MemBytes: 1 << 20, CPUCores: 1})
		var lat time.Duration
		pl.Spawn(cn, "client", func(c rdma.Ctx) {
			b1, b2 := make([]byte, 64), make([]byte, 64)
			start := c.Now()
			if batched {
				ops := []rdma.Op{
					{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: mn}, Buf: b1},
					{Kind: rdma.OpRead, Addr: rdma.GlobalAddr{Node: mn2}, Buf: b2},
				}
				if err := c.Batch(ops); err != nil {
					t.Errorf("batch: %v", err)
				}
			} else {
				if err := c.Read(b1, rdma.GlobalAddr{Node: mn}); err != nil {
					t.Errorf("read: %v", err)
				}
				if err := c.Read(b2, rdma.GlobalAddr{Node: mn2}); err != nil {
					t.Errorf("read: %v", err)
				}
			}
			lat = c.Now() - start
		})
		pl.Engine().RunUntilIdle()
		return lat
	}
	seq, bat := run(false), run(true)
	if bat >= seq {
		t.Fatalf("batched %v not faster than sequential %v", bat, seq)
	}
}

func TestDirectMemoryBypass(t *testing.T) {
	pl, mn, cn := testPlatform()
	copy(pl.DirectMemory(mn)[256:], "preloaded")
	var got []byte
	pl.Spawn(cn, "client", func(c rdma.Ctx) {
		got = make([]byte, 9)
		if err := c.Read(got, rdma.GlobalAddr{Node: mn, Off: 256}); err != nil {
			t.Errorf("read: %v", err)
		}
	})
	pl.Engine().RunUntilIdle()
	if string(got) != "preloaded" {
		t.Fatalf("got %q", got)
	}
}
