// Package simnet implements the rdma verb abstraction on top of the
// deterministic discrete-event engine in internal/sim.
//
// The cost model captures the two bounds that drive every performance
// phenomenon in the paper: a per-message NIC processing cost (the RNIC
// IOPS bound, which penalises the many small CAS operations replication
// needs) and a wire bandwidth cost (which penalises bulk transfers such
// as checkpoints and makes large reads bandwidth-bound). Memory-node
// CPU cores are modelled as FIFO resources so background work (erasure
// coding, checkpointing, RPC serving) queues and its utilisation can be
// reported (Table 3).
package simnet

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/rdma"
	"repro/internal/sim"
)

// Config is the fabric cost model. The defaults (see DefaultConfig)
// approximate the paper's testbed class: 56 Gbps ConnectX-3 RNICs.
type Config struct {
	// MsgCost is the NIC processing time per verb message, at each NIC
	// the message crosses. 100ns corresponds to a ~10 Mops/s per-NIC
	// message rate.
	MsgCost time.Duration
	// AtomicCost is the responder-NIC processing time of CAS/FAA
	// verbs. RNIC atomics execute as serialised PCIe read-modify-write
	// transactions and are several times slower than reads/writes
	// (~2 Mops/s on the paper's ConnectX-3 class hardware) — the IOPS
	// asymmetry that makes replication's multi-CAS commits so costly
	// (§2.4).
	AtomicCost time.Duration
	// BatchElemCost is the client-NIC cost of each element after the
	// first in a doorbell-batched list.
	BatchElemCost time.Duration
	// Bandwidth is the wire bandwidth in bytes per second.
	Bandwidth float64
	// PropDelay is the one-way propagation delay (switch + cable + PCIe).
	PropDelay time.Duration
	// RPCBaseCost is the fixed CPU time an RPC consumes on the server's
	// RPC core in addition to the handler-reported work.
	RPCBaseCost time.Duration
	// FailedOpDelay is how long a verb targeting a failed node takes to
	// report the error (a fast-failing QP timeout; the membership
	// service has usually told clients first).
	FailedOpDelay time.Duration
}

// DefaultConfig returns the calibrated cost model described in
// DESIGN.md §5.
func DefaultConfig() Config {
	return Config{
		MsgCost:       100 * time.Nanosecond,
		AtomicCost:    500 * time.Nanosecond,
		BatchElemCost: 30 * time.Nanosecond,
		Bandwidth:     7e9, // 56 Gbps
		PropDelay:     1500 * time.Nanosecond,
		RPCBaseCost:   500 * time.Nanosecond,
		FailedOpDelay: 5 * time.Microsecond,
	}
}

type node struct {
	id      rdma.NodeID
	mem     []byte
	nic     *sim.Resource
	cores   []*sim.Resource
	handler rdma.Handler
	failed  bool
	isMem   bool
	chaos   rdma.ChaosConfig
	rng     *rand.Rand // nil unless chaos is installed
	// writeObs, when non-nil, is called after every remote mutation of
	// this node's memory (WRITE, successful CAS, FAA) with the mutated
	// byte range. The engine runs one process at a time, so no lock is
	// needed.
	writeObs func(off, n uint64)
}

// chaosRoll draws one frame's injected faults. The engine runs one
// process at a time, so the node RNG needs no lock and the fault
// sequence is fully reproducible.
func (n *node) chaosRoll() (delay time.Duration, lost bool) {
	if n.rng == nil || !n.chaos.Enabled() {
		return 0, false
	}
	c := &n.chaos
	if c.DelayProb > 0 && c.MaxDelay > 0 && n.rng.Float64() < c.DelayProb {
		delay = time.Duration(n.rng.Int63n(int64(c.MaxDelay))) + 1
	}
	// Drops and resets collapse to the same observable on the simulated
	// fabric: the QP retries in hardware and eventually reports failure.
	if c.ResetProb > 0 && n.rng.Float64() < c.ResetProb {
		return delay, true
	}
	if c.DropProb > 0 && n.rng.Float64() < c.DropProb {
		return delay, true
	}
	return delay, false
}

// Platform is a simulated cluster. It implements rdma.Platform.
type Platform struct {
	eng   *sim.Engine
	cfg   Config
	nodes []*node
}

var _ rdma.Platform = (*Platform)(nil)

// New creates a simulated cluster over a fresh engine.
func New(cfg Config) *Platform {
	return &Platform{eng: sim.New(), cfg: cfg}
}

// Engine exposes the underlying event engine (for Run/Now/Shutdown).
func (pl *Platform) Engine() *sim.Engine { return pl.eng }

// Run advances virtual time to the limit.
func (pl *Platform) Run(limit time.Duration) { pl.eng.Run(limit) }

// Shutdown unwinds all processes. The platform must not be used after.
func (pl *Platform) Shutdown() { pl.eng.Shutdown() }

// AddMemNode registers a memory node with cfg.MemBytes of pool memory
// and cfg.CPUCores server cores.
func (pl *Platform) AddMemNode(cfg rdma.MemNodeConfig) rdma.NodeID {
	id := rdma.NodeID(len(pl.nodes))
	n := &node{
		id:    id,
		mem:   make([]byte, cfg.MemBytes),
		nic:   sim.NewResource(pl.eng, fmt.Sprintf("mn%d.nic", id), 1),
		isMem: true,
	}
	for c := 0; c < cfg.CPUCores; c++ {
		n.cores = append(n.cores, sim.NewResource(pl.eng, fmt.Sprintf("mn%d.cpu%d", id, c), 1))
	}
	pl.nodes = append(pl.nodes, n)
	return id
}

// AddComputeNode registers a compute node (NIC plus one CPU core for
// client-side work such as helper-assisted recovery decoding; no pool
// memory).
func (pl *Platform) AddComputeNode() rdma.NodeID {
	id := rdma.NodeID(len(pl.nodes))
	n := &node{
		id:    id,
		nic:   sim.NewResource(pl.eng, fmt.Sprintf("cn%d.nic", id), 1),
		cores: []*sim.Resource{sim.NewResource(pl.eng, fmt.Sprintf("cn%d.cpu0", id), 1)},
	}
	pl.nodes = append(pl.nodes, n)
	return id
}

// SetHandler installs the RPC dispatch function for a memory node.
func (pl *Platform) SetHandler(nodeID rdma.NodeID, h rdma.Handler) {
	pl.nodes[nodeID].handler = h
}

// Handler returns the RPC dispatch installed on a node (nil when none
// is registered or the node fail-stopped). Direct test harnesses use
// it to serve RPCs synchronously while the engine is paused.
func (pl *Platform) Handler(nodeID rdma.NodeID) rdma.Handler {
	return pl.nodes[nodeID].handler
}

// Fail fail-stops a node: memory contents are dropped and all verbs
// targeting it return rdma.ErrNodeFailed.
func (pl *Platform) Fail(nodeID rdma.NodeID) {
	n := pl.nodes[nodeID]
	n.failed = true
	n.mem = nil
	n.handler = nil
}

// Failed reports whether a node has fail-stopped.
func (pl *Platform) Failed(nodeID rdma.NodeID) bool { return pl.nodes[nodeID].failed }

var _ rdma.FaultInjector = (*Platform)(nil)

// SetChaos implements rdma.FaultInjector: probabilistic faults on the
// node, seeded for reproducibility. On the simulated fabric a dropped
// or reset frame surfaces as ErrNodeFailed after FailedOpDelay (the
// QP's in-hardware retries exhausting), and injected delays extend the
// op's service time.
func (pl *Platform) SetChaos(nodeID rdma.NodeID, cfg rdma.ChaosConfig) {
	n := pl.nodes[nodeID]
	n.chaos = cfg
	n.rng = rand.New(rand.NewSource(cfg.Seed))
}

var _ rdma.WriteObserver = (*Platform)(nil)

// SetWriteObserver implements rdma.WriteObserver: fn is invoked from
// apply for every remote mutation of the node's memory.
func (pl *Platform) SetWriteObserver(nodeID rdma.NodeID, fn func(off, n uint64)) bool {
	pl.nodes[nodeID].writeObs = fn
	return true
}

var _ rdma.LocalAtomics = (*Platform)(nil)

// LocalAdd64 implements rdma.LocalAtomics. The engine applies verbs
// one process at a time and write observers run inline in apply, so a
// plain read-modify-write is already atomic with respect to remote
// verbs.
func (pl *Platform) LocalAdd64(nodeID rdma.NodeID) func(off, delta uint64) {
	n := pl.nodes[nodeID]
	if n == nil {
		return nil
	}
	return func(off, delta uint64) {
		if n.mem == nil || off+8 > uint64(len(n.mem)) {
			return
		}
		v := binary.LittleEndian.Uint64(n.mem[off:])
		binary.LittleEndian.PutUint64(n.mem[off:], v+delta)
	}
}

// Spawn starts fn as a simulated process on the given node.
func (pl *Platform) Spawn(nodeID rdma.NodeID, name string, fn func(rdma.Ctx)) {
	n := pl.nodes[nodeID]
	pl.eng.Go(name, func(p *sim.Proc) {
		fn(&ctx{p: p, pl: pl, local: n})
	})
}

// NICUtilization returns the busy fraction of a node's NIC since the
// last ResetStats.
func (pl *Platform) NICUtilization(nodeID rdma.NodeID) float64 {
	return pl.nodes[nodeID].nic.Utilization()
}

// CoreUtilization returns the busy fraction of a memory node's CPU core
// since the last ResetStats.
func (pl *Platform) CoreUtilization(nodeID rdma.NodeID, core int) float64 {
	return pl.nodes[nodeID].cores[core].Utilization()
}

// ResetStats starts a new utilisation window on every NIC and core.
func (pl *Platform) ResetStats() {
	for _, n := range pl.nodes {
		n.nic.ResetUsage()
		for _, c := range n.cores {
			c.ResetUsage()
		}
	}
}

// DirectMemory returns the raw memory of a node, for test assertions
// and zero-cost bulk preloading in benchmarks. It bypasses the cost
// model and must not be used by store logic.
func (pl *Platform) DirectMemory(nodeID rdma.NodeID) []byte { return pl.nodes[nodeID].mem }

// Memory implements rdma.Platform: on the simulated fabric every
// node's memory is locally accessible.
func (pl *Platform) Memory(nodeID rdma.NodeID) []byte { return pl.nodes[nodeID].mem }

// MemMutex implements rdma.Platform: the one-runner-at-a-time engine
// already serialises all memory access.
func (pl *Platform) MemMutex(nodeID rdma.NodeID) sync.Locker { return rdma.NopLocker{} }

// VirtualTime implements rdma.VirtualTime: simulated processes sleep
// in engine time, so poll-based worker pools idle for free.
func (pl *Platform) VirtualTime() bool { return true }

// ctx implements rdma.Ctx for one simulated process.
type ctx struct {
	p     *sim.Proc
	pl    *Platform
	local *node
}

func (c *ctx) Node() rdma.NodeID     { return c.local.id }
func (c *ctx) Now() time.Duration    { return c.p.Now() }
func (c *ctx) Sleep(d time.Duration) { c.p.Sleep(d) }
func (c *ctx) LocalMem() []byte      { return c.local.mem }

func (c *ctx) UseCPU(core int, d time.Duration) {
	c.local.cores[core].Acquire(c.p, d)
}

// svcTime returns the responder-NIC service time of an op.
func (c *ctx) svcTime(op *rdma.Op) time.Duration {
	cfg := &c.pl.cfg
	base := cfg.MsgCost
	if op.Kind == rdma.OpCAS || op.Kind == rdma.OpFAA {
		base = cfg.AtomicCost
		if base == 0 {
			base = cfg.MsgCost
		}
	}
	return base + time.Duration(float64(payloadBytes(op))/cfg.Bandwidth*1e9)
}

// payloadBytes returns the wire payload a given op carries.
func payloadBytes(op *rdma.Op) int {
	switch op.Kind {
	case rdma.OpRead, rdma.OpWrite:
		return len(op.Buf)
	default:
		return 8
	}
}

// DebugWatch, when non-nil, is called for every applied operation
// with the issuing process's name (test instrumentation; the fabric is
// deterministic, so watchpoints reproduce exactly).
var DebugWatch func(proc string, node rdma.NodeID, op *rdma.Op)

// apply performs the memory effect of op against target node t.
func (c *ctx) apply(op *rdma.Op, t *node) {
	if DebugWatch != nil {
		DebugWatch(c.p.Name(), t.id, op)
	}
	end := op.Addr.Off + uint64(payloadBytes(op))
	if end > uint64(len(t.mem)) {
		op.Err = fmt.Errorf("%w: %v+%d (region %d)", rdma.ErrOutOfBounds, op.Addr, payloadBytes(op), len(t.mem))
		return
	}
	switch op.Kind {
	case rdma.OpRead:
		copy(op.Buf, t.mem[op.Addr.Off:end])
	case rdma.OpWrite:
		copy(t.mem[op.Addr.Off:end], op.Buf)
		if t.writeObs != nil {
			t.writeObs(op.Addr.Off, uint64(len(op.Buf)))
		}
	case rdma.OpCAS:
		if op.Addr.Off%8 != 0 {
			op.Err = rdma.ErrUnaligned
			return
		}
		word := t.mem[op.Addr.Off : op.Addr.Off+8]
		cur := binary.LittleEndian.Uint64(word)
		op.Result = cur
		if cur == op.Old {
			binary.LittleEndian.PutUint64(word, op.New)
			if t.writeObs != nil {
				t.writeObs(op.Addr.Off, 8)
			}
		}
	case rdma.OpFAA:
		if op.Addr.Off%8 != 0 {
			op.Err = rdma.ErrUnaligned
			return
		}
		word := t.mem[op.Addr.Off : op.Addr.Off+8]
		cur := binary.LittleEndian.Uint64(word)
		op.Result = cur
		binary.LittleEndian.PutUint64(word, cur+op.New)
		if t.writeObs != nil {
			t.writeObs(op.Addr.Off, 8)
		}
	}
}

// doBatch executes a doorbell-batched op list: the client NIC processes
// the doorbell (one message cost plus a small per-element cost), every
// op is charged at its target's NIC, and the caller sleeps until the
// last completion returns.
func (c *ctx) doBatch(ops []rdma.Op) error {
	cfg := &c.pl.cfg
	var completion time.Duration
	var firstErr error
	for i := range ops {
		op := &ops[i]
		cost := cfg.MsgCost
		if i > 0 {
			cost = cfg.BatchElemCost
		}
		c.local.nic.Acquire(c.p, cost)
		if int(op.Addr.Node) >= len(c.pl.nodes) {
			op.Err = fmt.Errorf("%w: unknown node %d", rdma.ErrOutOfBounds, op.Addr.Node)
		} else {
			t := c.pl.nodes[op.Addr.Node]
			delay, lost := t.chaosRoll()
			if t.failed || !t.isMem || lost {
				if t.failed || !t.isMem {
					op.Err = rdma.ErrNodeFailed
				} else {
					op.Err = fmt.Errorf("%w: injected frame loss", rdma.ErrNodeFailed)
				}
				if done := c.p.Now() + cfg.FailedOpDelay + delay; done > completion {
					completion = done
				}
			} else {
				arrive := c.p.Now() + cfg.PropDelay
				svc := c.svcTime(op) + delay
				done := t.nic.ReserveAt(arrive, svc) + cfg.PropDelay
				if done > completion {
					completion = done
				}
				c.apply(op, t)
			}
		}
		if op.Err != nil && firstErr == nil {
			firstErr = op.Err
		}
	}
	c.p.SleepUntil(completion)
	return firstErr
}

func (c *ctx) Read(buf []byte, addr rdma.GlobalAddr) error {
	ops := []rdma.Op{{Kind: rdma.OpRead, Addr: addr, Buf: buf}}
	return c.doBatch(ops)
}

func (c *ctx) Write(addr rdma.GlobalAddr, data []byte) error {
	ops := []rdma.Op{{Kind: rdma.OpWrite, Addr: addr, Buf: data}}
	return c.doBatch(ops)
}

func (c *ctx) CAS(addr rdma.GlobalAddr, old, new uint64) (uint64, error) {
	ops := []rdma.Op{{Kind: rdma.OpCAS, Addr: addr, Old: old, New: new}}
	err := c.doBatch(ops)
	return ops[0].Result, err
}

func (c *ctx) FAA(addr rdma.GlobalAddr, delta uint64) (uint64, error) {
	ops := []rdma.Op{{Kind: rdma.OpFAA, Addr: addr, New: delta}}
	err := c.doBatch(ops)
	return ops[0].Result, err
}

func (c *ctx) Batch(ops []rdma.Op) error { return c.doBatch(ops) }

// OrderedBatch implements rdma.OrderedBatcher: doBatch applies ops
// inline in list order within the issuing process's turn, so a tail
// OpCAS can never become visible before the writes posted ahead of it
// (a chaos-lost earlier op is simply never applied — the documented
// per-op-failure window).
func (c *ctx) OrderedBatch() bool { return true }

var _ rdma.OrderedBatcher = (*ctx)(nil)

// Post implements rdma.Verbs: operations are charged at both NICs and
// applied, but the caller does not sleep until their completion (an
// unsignaled post consumes no completion-queue round).
func (c *ctx) Post(ops []rdma.Op) error {
	cfg := &c.pl.cfg
	var firstErr error
	for i := range ops {
		op := &ops[i]
		cost := cfg.MsgCost
		if i > 0 {
			cost = cfg.BatchElemCost
		}
		c.local.nic.Acquire(c.p, cost)
		if int(op.Addr.Node) >= len(c.pl.nodes) {
			op.Err = fmt.Errorf("%w: unknown node %d", rdma.ErrOutOfBounds, op.Addr.Node)
		} else {
			t := c.pl.nodes[op.Addr.Node]
			delay, lost := t.chaosRoll()
			if t.failed || !t.isMem || lost {
				op.Err = rdma.ErrNodeFailed
			} else {
				arrive := c.p.Now() + cfg.PropDelay
				t.nic.ReserveAt(arrive, c.svcTime(op)+delay)
				c.apply(op, t)
			}
		}
		if op.Err != nil && firstErr == nil {
			firstErr = op.Err
		}
	}
	return firstErr
}

// RPC sends a two-sided request to the server on node. The request and
// response cross both NICs and the handler's work is charged to the
// target's RPC core.
func (c *ctx) RPC(nodeID rdma.NodeID, method uint8, req []byte) ([]byte, error) {
	cfg := &c.pl.cfg
	c.local.nic.Acquire(c.p, cfg.MsgCost+time.Duration(float64(len(req))/cfg.Bandwidth*1e9))
	c.p.Sleep(cfg.PropDelay)
	if int(nodeID) >= len(c.pl.nodes) {
		return nil, fmt.Errorf("%w: unknown node %d", rdma.ErrOutOfBounds, nodeID)
	}
	t := c.pl.nodes[nodeID]
	delay, lost := t.chaosRoll()
	if delay > 0 {
		c.p.Sleep(delay)
	}
	if t.failed || lost {
		c.p.Sleep(cfg.FailedOpDelay)
		if t.failed {
			return nil, rdma.ErrNodeFailed
		}
		return nil, fmt.Errorf("%w: injected frame loss", rdma.ErrNodeFailed)
	}
	if t.handler == nil {
		return nil, rdma.ErrNoHandler
	}
	t.nic.Acquire(c.p, cfg.MsgCost+time.Duration(float64(len(req))/cfg.Bandwidth*1e9))
	resp, cpu := t.handler(method, req)
	if len(t.cores) > 0 {
		t.cores[rdma.CoreRPC].Acquire(c.p, cfg.RPCBaseCost+cpu)
	}
	t.nic.Acquire(c.p, cfg.MsgCost+time.Duration(float64(len(resp))/cfg.Bandwidth*1e9))
	c.p.Sleep(cfg.PropDelay)
	return resp, nil
}
