package aceso

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Layout.IndexBytes = 32 << 10
	cfg.Layout.BlockSize = 16 << 10
	cfg.Layout.StripeRows = 12
	cfg.Layout.PoolBlocks = 10
	cfg.CkptInterval = 20 * time.Millisecond
	return cfg
}

func TestPublicAPICRUD(t *testing.T) {
	cluster, err := NewSimCluster(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	cluster.RunClient("crud", func(c *Client) {
		if err := c.Insert([]byte("alpha"), []byte("one")); err != nil {
			t.Errorf("insert: %v", err)
		}
		v, err := c.Search([]byte("alpha"))
		if err != nil || !bytes.Equal(v, []byte("one")) {
			t.Errorf("search: %q %v", v, err)
		}
		if err := c.Update([]byte("alpha"), []byte("two")); err != nil {
			t.Errorf("update: %v", err)
		}
		v, _ = c.Search([]byte("alpha"))
		if !bytes.Equal(v, []byte("two")) {
			t.Errorf("after update: %q", v)
		}
		if err := c.Delete([]byte("alpha")); err != nil {
			t.Errorf("delete: %v", err)
		}
		if _, err := c.Search([]byte("alpha")); !errors.Is(err, ErrNotFound) {
			t.Errorf("after delete: %v", err)
		}
	})
}

func TestPublicAPIConcurrentClientsAndFailover(t *testing.T) {
	cluster, err := NewSimCluster(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()

	const n = 100
	for w := 0; w < 4; w++ {
		w := w
		cluster.SpawnClient(fmt.Sprintf("writer%d", w), func(c *Client) {
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("w%d-key%d", w, i))
				if err := c.Insert(k, []byte(fmt.Sprintf("val-%d-%d", w, i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
			}
		})
	}
	if !cluster.Wait() {
		t.Fatal("writers did not finish")
	}
	cluster.Advance(2 * smallConfig().CkptInterval)

	cluster.FailMN(0)
	ok := cluster.RunUntil(func() bool {
		_, _, blocksReady := cluster.MNState(0)
		return blocksReady
	})
	if !ok {
		t.Fatal("recovery did not finish")
	}
	if len(cluster.RecoveryReports()) != 1 {
		t.Fatal("missing recovery report")
	}

	cluster.RunClient("verifier", func(c *Client) {
		for w := 0; w < 4; w++ {
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("w%d-key%d", w, i))
				v, err := c.Search(k)
				if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("val-%d-%d", w, i))) {
					t.Errorf("post-recovery search %s: %v", k, err)
					return
				}
			}
		}
	})
}

func TestPublicAPIMemoryUsage(t *testing.T) {
	cluster, err := NewSimCluster(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	cluster.Start()
	cluster.RunClient("loader", func(c *Client) {
		for i := 0; i < 200; i++ {
			if err := c.Insert([]byte(fmt.Sprintf("key%04d", i)), bytes.Repeat([]byte("x"), 200)); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
		}
	})
	cluster.Advance(50 * time.Millisecond)
	u := cluster.MemoryUsage()
	if u.ValidBytes == 0 || u.ParityBytes == 0 {
		t.Fatalf("usage not accounted: %+v", u)
	}
}
