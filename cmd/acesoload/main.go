// Command acesoload drives a measured workload against a running
// Aceso group (acesod daemons) over the TCP fabric: it preloads a
// keyspace, runs a YCSB-style mix or a Twitter-format trace file from
// concurrent clients, and reports live windowed SLO state (p50/p99/
// p999 and error-budget burn per op type) plus an exit summary.
//
//	acesoload -peers :7000,:7001,:7002,:7003,:7004 -mix ycsb-a -clients 8 -ops 20000
//	acesoload -peers ... -trace cluster17.csv
//	acesoload -peers ... -report 1s -slo-p99 2ms -kill-mn 2 -kill-after 3s
//
// The -kill-mn/-kill-after pair injects an MN fail-stop mid-run (via
// the admin RPC), so the degraded-mode flag and tail-latency impact of
// a failure show up in the live report and in the exit artifacts
// (results/sloload.csv + BENCH_sloperf.json).
//
// -ftmode must match the daemons': the loader drives the mode-generic
// client surface, so the same flags measure Aceso, FUSEE-style
// replication or SWARM-style in-place replication.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/ftmode"
	// Link every fault-tolerance mode into the -ftmode registry.
	_ "repro/internal/ftmodes"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/tcpnet"
	"repro/internal/stats"
	"repro/internal/workload"
)

var mixes = map[string]workload.Mix{
	"ycsb-a":            workload.YCSBA,
	"ycsb-b":            workload.YCSBB,
	"ycsb-c":            workload.YCSBC,
	"ycsb-d":            workload.YCSBD,
	"twitter-storage":   workload.TwitterStorage,
	"twitter-compute":   workload.TwitterCompute,
	"twitter-transient": workload.TwitterTransient,
}

func sloClassOf(k workload.Kind) obs.SLOClass {
	switch k {
	case workload.OpUpdate:
		return obs.SLOUpdate
	case workload.OpInsert:
		return obs.SLOInsert
	case workload.OpDelete:
		return obs.SLODelete
	default:
		return obs.SLOGet
	}
}

// windowRow is one reporting window's snapshot per op class, kept for
// the exit CSV.
type windowRow struct {
	atSec    float64
	rep      obs.SLOReport
	degraded bool
}

func main() {
	var (
		peers       = flag.String("peers", "", "comma-separated addresses of all memory nodes, in id order")
		mixName     = flag.String("mix", "ycsb-a", "workload mix: ycsb-{a,b,c,d} or twitter-{storage,compute,transient}")
		trace       = flag.String("trace", "", "replay a Twitter-format CSV trace instead of a mix")
		clients     = flag.Int("clients", 8, "concurrent client count")
		ops         = flag.Int("ops", 10000, "measured operations per client")
		keys        = flag.Uint64("keys", 10000, "preloaded keyspace size")
		kvSize      = flag.Int("kv", 1024, "value size in bytes")
		report      = flag.Duration("report", time.Second, "live SLO report interval (0 disables live printing)")
		sloP99      = flag.Duration("slo-p99", 2*time.Millisecond, "per-op latency target: requests over this burn error budget")
		sloBudget   = flag.Float64("slo-budget", 0.01, "error budget: allowed fraction of requests over target or failed")
		killMN      = flag.Int("kill-mn", -1, "inject an admin fail-stop of this logical MN mid-run (-1 disables)")
		killAfter   = flag.Duration("kill-after", 2*time.Second, "delay after the measured phase starts before the -kill-mn injection")
		outDir      = flag.String("out", "results", "directory for the sloload.csv exit summary")
		metricsAddr = flag.String("metrics-addr", "", "serve /metrics (aceso_slo_*), /debug/optrace etc. on this address during the run")
	)
	cfg := core.DefaultConfig()
	flag.StringVar(&cfg.FTMode, "ftmode", core.FTModeAceso, "fault-tolerance mode (must match the daemons): "+strings.Join(core.FTModes(), " | "))
	flag.Uint64Var(&cfg.Layout.IndexBytes, "index-bytes", cfg.Layout.IndexBytes, "index area bytes per MN (must match the daemons)")
	flag.Uint64Var(&cfg.Layout.BlockSize, "block-size", cfg.Layout.BlockSize, "memory block size (must match the daemons)")
	stripes := flag.Int("stripes", cfg.Layout.StripeRows, "coding stripe rows (must match the daemons)")
	pool := flag.Int("pool", cfg.Layout.PoolBlocks, "pool blocks per MN (must match the daemons)")
	flag.IntVar(&cfg.CacheEntries, "cache-entries", cfg.CacheEntries, "per-client index cache entry bound (0 = default 16384, <0 disables)")
	flag.IntVar(&cfg.OffloadBuckets, "offload-buckets", cfg.OffloadBuckets, "per-client hot-bucket mirror budget (0 disables the offload)")
	flag.BoolVar(&cfg.CacheNegative, "cache-negative", cfg.CacheNegative, "cache negative GET conclusions validated by bucket version reads")
	flag.BoolVar(&cfg.CacheValues, "cache-values", cfg.CacheValues, "cache committed values; hits cost one 8-byte slot validation read")
	flag.BoolVar(&cfg.FusedCommit, "fused-commit", cfg.FusedCommit, "fuse the commit CAS into the placement doorbell on ordered fabrics (single-RTT updates)")
	flag.BoolVar(&cfg.BlockPrefetch, "block-prefetch", cfg.BlockPrefetch, "pre-provision DATA/DELTA blocks on a per-client background worker")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 {
		log.Fatalf("need at least 2 peers, got %q", *peers)
	}
	cfg.Layout.NumMNs = len(addrs)
	cfg.Layout.StripeRows = *stripes
	cfg.Layout.PoolBlocks = *pool

	pl := tcpnet.New(addrs, 0, false)
	ipl := obs.Instrument(pl, obs.NewFabricMetrics())
	ft, err := core.OpenFT(cfg, ipl)
	if err != nil {
		log.Fatal(err)
	}
	// Aceso-only instrumentation (span tracer, trace ring) hangs off
	// the core cluster; the replication modes run without it.
	var cl *core.Cluster
	if a, ok := ft.(interface{ Core() *core.Cluster }); ok {
		cl = a.Core()
		ipl.SetTracer(cl.Tracer())
	}

	slo := obs.NewSLOTracker(obs.SLOTarget{P99: *sloP99, Budget: *sloBudget})

	if *metricsAddr != "" {
		exp := &obs.Exporter{
			Fabric:     ipl.Metrics(),
			Transport:  pl.TransportStats,
			SLO:        slo,
			FabricName: "tcpnet",
			FTMode:     ft.Mode(),
		}
		if cl != nil {
			exp.Trace = cl.Trace()
			exp.Tracer = cl.Tracer()
			exp.Cache = cl.CacheMetrics()
			exp.Write = cl.WriteMetrics()
		}
		go func() {
			if err := http.ListenAndServe(*metricsAddr, exp.Handler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		fmt.Printf("metrics on http://%s/metrics\n", *metricsAddr)
	}

	gens := make([]workload.Generator, *clients)
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			log.Fatal(err)
		}
		traceOps, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d trace records across %d clients\n", len(traceOps), *clients)
		per := (len(traceOps) + *clients - 1) / *clients
		for i := range gens {
			lo := i * per
			hi := lo + per
			if hi > len(traceOps) {
				hi = len(traceOps)
			}
			if lo >= hi {
				gens[i] = workload.NewTraceGen(traceOps)
			} else {
				gens[i] = workload.NewTraceGen(traceOps[lo:hi])
			}
		}
	} else {
		mix, ok := mixes[*mixName]
		if !ok {
			log.Fatalf("unknown mix %q", *mixName)
		}
		fmt.Printf("running %s: %d clients x %d ops over %d keys\n", mix.Name, *clients, *ops, *keys)
		for i := range gens {
			gens[i] = workload.NewMixGen(mix, *keys, int64(1000+i))
		}
	}

	// Preload the shared keyspace from one client.
	preStart := time.Now()
	runClient(ipl, ft, func(c ftmode.Client) {
		for i := uint64(0); i < *keys; i++ {
			k := workload.KeyName(i)
			if err := c.Insert(k, workload.Value(k, *kvSize)); err != nil {
				log.Fatalf("preload %d: %v", i, err)
			}
		}
	})
	fmt.Printf("preloaded %d keys in %v\n", *keys, time.Since(preStart).Round(time.Millisecond))

	// Measured phase.
	var mu sync.Mutex
	hist := stats.NewHistogram()
	var total, hardErrs uint64
	var wg sync.WaitGroup
	start := time.Now()
	done := make(chan struct{})

	// Live SLO reporter: rotate windows, flip the degraded flag off
	// node-failure counter deltas, print, and keep rows for the CSV.
	var rowsMu sync.Mutex
	var rows []windowRow
	if *report > 0 {
		go func() {
			tick := time.NewTicker(*report)
			defer tick.Stop()
			lastFail := pl.TransportStats().NodeFailures
			for {
				select {
				case <-done:
					return
				case <-tick.C:
				}
				t := pl.TransportStats()
				degraded := t.NodeFailures > lastFail
				lastFail = t.NodeFailures
				slo.SetDegraded(degraded)
				slo.Rotate()
				at := time.Since(start).Seconds()
				reps := slo.Reports()
				rowsMu.Lock()
				for c := range reps {
					if reps[c].Count > 0 {
						rows = append(rows, windowRow{atSec: at, rep: reps[c], degraded: degraded})
					}
				}
				rowsMu.Unlock()
				printLive(at, reps, degraded)
			}
		}()
	}

	// Optional mid-run fail-stop injection.
	if *killMN >= 0 {
		go func() {
			select {
			case <-done:
				return
			case <-time.After(*killAfter):
			}
			runClient(ipl, ft, func(c ftmode.Client) {
				killer, ok := c.(interface{ KillMN(mn int) error })
				if !ok {
					log.Printf("kill mn%d: ftmode %s client has no admin kill", *killMN, ft.Mode())
					return
				}
				if err := killer.KillMN(*killMN); err != nil {
					log.Printf("kill mn%d: %v", *killMN, err)
				} else {
					fmt.Printf("[%6.1fs] injected fail-stop of mn%d\n", time.Since(start).Seconds(), *killMN)
				}
			})
		}()
	}

	for i := 0; i < *clients; i++ {
		g := gens[i]
		wg.Add(1)
		cn := ipl.AddComputeNode()
		ft.SpawnClient(cn, fmt.Sprintf("load%d", i), func(c ftmode.Client) {
			defer wg.Done()
			local := stats.NewHistogram()
			for n := 0; n < *ops; n++ {
				op := g.Next()
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpSearch:
					_, err = c.Search(op.Key)
				case workload.OpUpdate:
					err = c.Update(op.Key, workload.Value(op.Key, *kvSize))
				case workload.OpInsert:
					err = c.Insert(op.Key, workload.Value(op.Key, *kvSize))
				case workload.OpDelete:
					err = c.Delete(op.Key)
				}
				lat := time.Since(t0)
				failed := err != nil && !errors.Is(err, core.ErrNotFound)
				slo.Observe(sloClassOf(op.Kind), lat, failed)
				if failed {
					// Keep driving load through degraded windows — a
					// failed op is an SLO breach, not a harness abort.
					atomic.AddUint64(&hardErrs, 1)
				}
				local.Record(lat)
			}
			c.Close()
			mu.Lock()
			hist.Merge(local)
			total += uint64(*ops)
			mu.Unlock()
		})
	}
	wg.Wait()
	close(done)
	elapsed := time.Since(start)

	fmt.Printf("\n%d ops in %v: %.1f Kops/s (%d hard errors)\n", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e3, atomic.LoadUint64(&hardErrs))
	fmt.Printf("latency: p50=%v p99=%v p999=%v mean=%v\n",
		hist.Percentile(0.50), hist.Percentile(0.99), hist.Percentile(0.999), hist.Mean())
	degWin, totWin := slo.DegradedRotations()
	fmt.Printf("windows: %d total, %d degraded\n", totWin, degWin)
	rowsMu.Lock()
	writeCSV(filepath.Join(*outDir, "sloload.csv"), rows)
	rowsMu.Unlock()
	writeSummary("BENCH_sloperf.json", ft.Mode(), slo, hist, total, elapsed, *killMN)
	pl.Close()
}

func printLive(atSec float64, reps [obs.NumSLOClasses]obs.SLOReport, degraded bool) {
	for c := range reps {
		r := &reps[c]
		if r.Count == 0 {
			continue
		}
		fmt.Printf("[%6.1fs] %-6s n=%-6d p50=%-9v p99=%-9v p999=%-9v err=%-4d burn=%.2f degraded=%v\n",
			atSec, r.Class, r.Count, r.P50.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.P999.Round(time.Microsecond),
			r.Errors, r.BurnRate, degraded)
	}
}

func writeCSV(path string, rows []windowRow) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		log.Printf("csv: %v", err)
		return
	}
	f, err := os.Create(path)
	if err != nil {
		log.Printf("csv: %v", err)
		return
	}
	defer f.Close()
	fmt.Fprintln(f, "window_end_s,op,count,errors,breaches,p50_us,p99_us,p999_us,burn_rate,degraded")
	for _, r := range rows {
		deg := 0
		if r.degraded {
			deg = 1
		}
		fmt.Fprintf(f, "%.1f,%s,%d,%d,%d,%.1f,%.1f,%.1f,%.3f,%d\n",
			r.atSec, r.rep.Class, r.rep.Count, r.rep.Errors, r.rep.Breaches,
			float64(r.rep.P50)/1e3, float64(r.rep.P99)/1e3, float64(r.rep.P999)/1e3,
			r.rep.BurnRate, deg)
	}
	fmt.Printf("wrote %s (%d windows)\n", path, len(rows))
}

func writeSummary(path, ftm string, slo *obs.SLOTracker, hist *stats.Histogram, total uint64, elapsed time.Duration, killMN int) {
	degWin, totWin := slo.DegradedRotations()
	type classSum struct {
		Ops      uint64  `json:"ops"`
		Errors   uint64  `json:"errors"`
		Breaches uint64  `json:"breaches"`
		P50us    float64 `json:"p50_us"`
		P99us    float64 `json:"p99_us"`
		P999us   float64 `json:"p999_us"`
	}
	classes := map[string]classSum{}
	for c, r := range slo.Reports() {
		if r.TotalOps == 0 {
			continue
		}
		classes[obs.SLOClass(c).String()] = classSum{
			Ops: r.TotalOps, Errors: r.TotalErrs, Breaches: r.TotalBrch,
			P50us:  float64(r.P50) / 1e3,
			P99us:  float64(r.P99) / 1e3,
			P999us: float64(r.P999) / 1e3,
		}
	}
	out := map[string]any{
		"experiment":       "sloperf",
		"fabric":           "tcpnet",
		"ftmode":           ftm,
		"ops":              total,
		"elapsed_s":        elapsed.Seconds(),
		"kops_per_s":       float64(total) / elapsed.Seconds() / 1e3,
		"p50_us":           float64(hist.Percentile(0.50)) / 1e3,
		"p99_us":           float64(hist.Percentile(0.99)) / 1e3,
		"p999_us":          float64(hist.Percentile(0.999)) / 1e3,
		"windows":          totWin,
		"degraded_windows": degWin,
		"killed_mn":        killMN,
		"classes":          classes,
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Printf("summary: %v", err)
		return
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		log.Printf("summary: %v", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

// runClient runs fn synchronously on a fresh compute node.
func runClient(pl rdma.Platform, ft ftmode.Cluster, fn func(ftmode.Client)) {
	var wg sync.WaitGroup
	wg.Add(1)
	cn := pl.AddComputeNode()
	ft.SpawnClient(cn, "loader", func(c ftmode.Client) {
		defer wg.Done()
		fn(c)
	})
	wg.Wait()
}
