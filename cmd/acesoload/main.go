// Command acesoload drives a measured workload against a running
// Aceso group (acesod daemons) over the TCP fabric: it preloads a
// keyspace, runs a YCSB-style mix or a Twitter-format trace file from
// concurrent clients, and reports throughput and latency percentiles.
//
//	acesoload -peers :7000,:7001,:7002,:7003,:7004 -mix ycsb-a -clients 8 -ops 20000
//	acesoload -peers ... -trace cluster17.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/rdma/tcpnet"
	"repro/internal/stats"
	"repro/internal/workload"
)

var mixes = map[string]workload.Mix{
	"ycsb-a":            workload.YCSBA,
	"ycsb-b":            workload.YCSBB,
	"ycsb-c":            workload.YCSBC,
	"ycsb-d":            workload.YCSBD,
	"twitter-storage":   workload.TwitterStorage,
	"twitter-compute":   workload.TwitterCompute,
	"twitter-transient": workload.TwitterTransient,
}

func main() {
	var (
		peers   = flag.String("peers", "", "comma-separated addresses of all memory nodes, in id order")
		mixName = flag.String("mix", "ycsb-a", "workload mix: ycsb-{a,b,c,d} or twitter-{storage,compute,transient}")
		trace   = flag.String("trace", "", "replay a Twitter-format CSV trace instead of a mix")
		clients = flag.Int("clients", 8, "concurrent client count")
		ops     = flag.Int("ops", 10000, "measured operations per client")
		keys    = flag.Uint64("keys", 10000, "preloaded keyspace size")
		kvSize  = flag.Int("kv", 1024, "value size in bytes")
	)
	cfg := core.DefaultConfig()
	flag.Uint64Var(&cfg.Layout.IndexBytes, "index-bytes", cfg.Layout.IndexBytes, "index area bytes per MN (must match the daemons)")
	flag.Uint64Var(&cfg.Layout.BlockSize, "block-size", cfg.Layout.BlockSize, "memory block size (must match the daemons)")
	stripes := flag.Int("stripes", cfg.Layout.StripeRows, "coding stripe rows (must match the daemons)")
	pool := flag.Int("pool", cfg.Layout.PoolBlocks, "pool blocks per MN (must match the daemons)")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 {
		log.Fatalf("need at least 2 peers, got %q", *peers)
	}
	cfg.Layout.NumMNs = len(addrs)
	cfg.Layout.StripeRows = *stripes
	cfg.Layout.PoolBlocks = *pool

	pl := tcpnet.New(addrs, 0, false)
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		log.Fatal(err)
	}

	gens := make([]workload.Generator, *clients)
	if *trace != "" {
		f, err := os.Open(*trace)
		if err != nil {
			log.Fatal(err)
		}
		traceOps, err := workload.ParseTrace(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("replaying %d trace records across %d clients\n", len(traceOps), *clients)
		per := (len(traceOps) + *clients - 1) / *clients
		for i := range gens {
			lo := i * per
			hi := lo + per
			if hi > len(traceOps) {
				hi = len(traceOps)
			}
			if lo >= hi {
				gens[i] = workload.NewTraceGen(traceOps)
			} else {
				gens[i] = workload.NewTraceGen(traceOps[lo:hi])
			}
		}
	} else {
		mix, ok := mixes[*mixName]
		if !ok {
			log.Fatalf("unknown mix %q", *mixName)
		}
		fmt.Printf("running %s: %d clients x %d ops over %d keys\n", mix.Name, *clients, *ops, *keys)
		for i := range gens {
			gens[i] = workload.NewMixGen(mix, *keys, int64(1000+i))
		}
	}

	// Preload the shared keyspace from one client.
	preStart := time.Now()
	runClient(pl, cl, func(c *core.Client) {
		for i := uint64(0); i < *keys; i++ {
			k := workload.KeyName(i)
			if err := c.Insert(k, workload.Value(k, *kvSize)); err != nil {
				log.Fatalf("preload %d: %v", i, err)
			}
		}
	})
	fmt.Printf("preloaded %d keys in %v\n", *keys, time.Since(preStart).Round(time.Millisecond))

	// Measured phase.
	var mu sync.Mutex
	hist := stats.NewHistogram()
	var total uint64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < *clients; i++ {
		g := gens[i]
		wg.Add(1)
		cn := pl.AddComputeNode()
		cl.SpawnClient(cn, fmt.Sprintf("load%d", i), func(c *core.Client) {
			defer wg.Done()
			local := stats.NewHistogram()
			for n := 0; n < *ops; n++ {
				op := g.Next()
				t0 := time.Now()
				var err error
				switch op.Kind {
				case workload.OpSearch:
					_, err = c.Search(op.Key)
				case workload.OpUpdate:
					err = c.Update(op.Key, workload.Value(op.Key, *kvSize))
				case workload.OpInsert:
					err = c.Insert(op.Key, workload.Value(op.Key, *kvSize))
				case workload.OpDelete:
					err = c.Delete(op.Key)
				}
				if err != nil && !errors.Is(err, core.ErrNotFound) {
					log.Fatalf("client op %d (%v %s): %v", n, op.Kind, op.Key, err)
				}
				local.Record(time.Since(t0))
			}
			c.Close()
			mu.Lock()
			hist.Merge(local)
			total += uint64(*ops)
			mu.Unlock()
		})
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("\n%d ops in %v: %.1f Kops/s\n", total, elapsed.Round(time.Millisecond),
		float64(total)/elapsed.Seconds()/1e3)
	fmt.Printf("latency: p50=%v p99=%v p999=%v mean=%v\n",
		hist.Percentile(0.50), hist.Percentile(0.99), hist.Percentile(0.999), hist.Mean())
	pl.Close()
}

// runClient runs fn synchronously on a fresh compute node.
func runClient(pl *tcpnet.Platform, cl *core.Cluster, fn func(*core.Client)) {
	var wg sync.WaitGroup
	wg.Add(1)
	cn := pl.AddComputeNode()
	cl.SpawnClient(cn, "loader", func(c *core.Client) {
		defer wg.Done()
		fn(c)
	})
	wg.Wait()
}
