// Command acesobench regenerates the paper's evaluation artifacts
// (Figures 1, 8-20 and Tables 2-3) on the simulated fabric and prints
// them as paper-style tables.
//
// Usage:
//
//	acesobench -list
//	acesobench -exp fig8
//	acesobench -all
//	acesobench -all -quick          # fast smoke pass
//	acesobench -exp fig10 -clients 92 -ops 300
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run (fig1a, fig1b, fig8..fig20, tab2, tab3)")
		all     = flag.Bool("all", false, "run every experiment in paper order")
		list    = flag.Bool("list", false, "list experiment ids and titles")
		quick   = flag.Bool("quick", false, "shrink scale for a fast smoke pass")
		clients = flag.Int("clients", 0, "total client count (default 92)")
		cns     = flag.Int("cns", 0, "compute node count (default 23)")
		ops     = flag.Int("ops", 0, "measured operations per client (default 200)")
		kvSize  = flag.Int("kv", 0, "value size in bytes (default 1024)")
		csvDir  = flag.String("csv", "", "also write each result as <dir>/<id>.csv")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			e, _ := bench.Lookup(id)
			fmt.Printf("%-8s %s\n", id, e.Title)
		}
		return
	}

	opts := bench.Options{
		Clients:      *clients,
		CNs:          *cns,
		OpsPerClient: *ops,
		KVSize:       *kvSize,
		Quick:        *quick,
	}

	ids := []string{}
	switch {
	case *all:
		ids = bench.IDs()
	case *exp != "":
		ids = append(ids, *exp)
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, id := range ids {
		start := time.Now()
		res, err := bench.Run(id, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println(res.Text())
		fmt.Printf("  (generated in %v)\n\n", time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f, err := os.Create(filepath.Join(*csvDir, id+".csv"))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := res.WriteCSV(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			f.Close()
		}
		// Experiments with a machine-readable summary always emit their
		// artifacts (results/<id>.csv + BENCH_<id>.json), so perf runs
		// leave a benchstat-style record without extra flags.
		if res.Summary != nil {
			if err := writeSummary(res); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

func writeSummary(res *bench.Result) error {
	if err := os.MkdirAll("results", 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join("results", res.ID+".csv"))
	if err != nil {
		return err
	}
	if err := res.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	blob, err := json.MarshalIndent(map[string]any{
		"id":      res.ID,
		"title":   res.Title,
		"summary": res.Summary,
		"notes":   res.Notes,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile("BENCH_"+res.ID+".json", append(blob, '\n'), 0o644)
}
