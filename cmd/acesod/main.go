// Command acesod runs one Aceso memory-node daemon over the TCP
// fabric: it registers the node's pool memory, serves one-sided verbs
// (software-emulated RDMA), and runs the MN server daemons
// (allocation RPC, differential checkpointing, offline erasure coding,
// meta replication). The daemon passed -master also runs the master
// (checkpoint round trigger).
//
// A five-node group on one machine:
//
//	acesod -mn 0 -peers :7000,:7001,:7002,:7003,:7004 -master &
//	acesod -mn 1 -peers :7000,:7001,:7002,:7003,:7004 &
//	... (mn 2..4)
//	acesocli -peers :7000,:7001,:7002,:7003,:7004
//
// Every daemon and client must be started with the same -peers list
// and geometry flags so they construct identical layouts.
//
// -ftmode selects the fault-tolerance mode. The default, "aceso", runs
// the full hybrid scheme above. "fusee-replication" and "swarm-inplace"
// serve the same verbs with replication-based backup instead: those
// daemons run no checkpoint/erasure machinery and no master — their
// handlers are installed at open — but still answer the admin verbs
// (kill) and export /metrics. Every daemon and client must agree on
// -ftmode, like the geometry flags.
//
// The daemon is also the deployment surface for fault injection: the
// core RPC dispatch answers the admin verbs, so any client can crash a
// node (acesocli `kill <mn>`) or install probabilistic drop/delay/reset
// chaos on it (`chaos <mn> ...`) without daemon-side flags. The
// -op-timeout/-retry-budget/-dial-timeout flags bound how long this
// daemon's own outgoing verbs (checkpointing, coding, recovery) ride
// the transparent-reconnect layer before a peer is declared failed.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/core"
	// Link every fault-tolerance mode into the -ftmode registry.
	_ "repro/internal/ftmodes"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/tcpnet"
)

// version labels aceso_build_info; override at build time with
// -ldflags "-X main.version=v1.2.3".
var version = "dev"

func main() {
	var (
		mn          = flag.Int("mn", 0, "this daemon's logical memory-node id")
		peers       = flag.String("peers", "", "comma-separated listen addresses of all memory nodes, in id order")
		master      = flag.Bool("master", false, "also run the master (checkpoint trigger) in this daemon")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus-text /metrics, /healthz, /readyz and /debug/optrace on this address (e.g. :9100); empty disables")
		pprofOn     = flag.Bool("pprof", false, "mount net/http/pprof handlers (cpu/heap/mutex/block) on the -metrics-addr mux")
	)
	cfg := core.DefaultConfig()
	flag.StringVar(&cfg.FTMode, "ftmode", core.FTModeAceso, "fault-tolerance mode: "+strings.Join(core.FTModes(), " | "))
	flag.Uint64Var(&cfg.Layout.IndexBytes, "index-bytes", cfg.Layout.IndexBytes, "index area bytes per MN")
	flag.Uint64Var(&cfg.Layout.BlockSize, "block-size", cfg.Layout.BlockSize, "memory block size")
	stripes := flag.Int("stripes", cfg.Layout.StripeRows, "coding stripe rows")
	pool := flag.Int("pool", cfg.Layout.PoolBlocks, "delta/copy pool blocks per MN")
	ckpt := flag.Duration("ckpt", cfg.CkptInterval, "checkpoint interval")
	flag.IntVar(&cfg.Layout.CkptSegments, "ckpt-segments", cfg.Layout.CkptSegments, "checkpoint index segments (geometry: must match on every daemon and client; 1 = full-image rounds)")
	flag.IntVar(&cfg.CkptWorkers, "ckpt-workers", cfg.CkptWorkers, "checkpoint compression worker cores per MN (0 = inline on the send core)")
	flag.IntVar(&cfg.ECWorkers, "ec-workers", cfg.ECWorkers, "erasure worker cores per MN for banded encode/reconstruct kernels (0 = inline on the erasure core)")
	flag.IntVar(&cfg.TraceSample, "trace-sample", cfg.TraceSample, "op-span sampling: 1 in N ops records a span tree (0 = default 64, <0 disables)")
	flag.IntVar(&cfg.CacheEntries, "cache-entries", cfg.CacheEntries, "per-client index cache entry bound (0 = default 16384, <0 disables; clients must match)")
	flag.IntVar(&cfg.OffloadBuckets, "offload-buckets", cfg.OffloadBuckets, "per-client hot-bucket mirror budget (0 disables the offload; clients must match)")
	flag.BoolVar(&cfg.CacheNegative, "cache-negative", cfg.CacheNegative, "cache negative GET conclusions validated by bucket version reads")
	flag.BoolVar(&cfg.CacheValues, "cache-values", cfg.CacheValues, "cache committed values; hits cost one 8-byte slot validation read")
	flag.BoolVar(&cfg.FusedCommit, "fused-commit", cfg.FusedCommit, "fuse the commit CAS into the placement doorbell on ordered fabrics (single-RTT updates)")
	flag.BoolVar(&cfg.BlockPrefetch, "block-prefetch", cfg.BlockPrefetch, "pre-provision DATA/DELTA blocks on a per-client background worker")
	flag.IntVar(&cfg.TraceSpans, "trace-spans", cfg.TraceSpans, "span ring capacity (newest retained; 0 = default 4096)")
	opt := tcpnet.Options{}.WithDefaults()
	flag.DurationVar(&opt.DialTimeout, "dial-timeout", opt.DialTimeout, "TCP dial timeout per connection attempt")
	flag.DurationVar(&opt.OpTimeout, "op-timeout", opt.OpTimeout, "per-verb I/O deadline before a retry")
	flag.DurationVar(&opt.RetryBudget, "retry-budget", opt.RetryBudget, "total retry window before a peer is declared failed")
	flag.IntVar(&opt.ConnsPerNode, "conns-per-node", opt.ConnsPerNode, "striped TCP connections per peer node")
	flag.IntVar(&opt.Stripes, "lock-stripes", opt.Stripes, "region lock stripes per served node (1 = one global lock)")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 {
		log.Fatalf("need at least 2 peers, got %q", *peers)
	}
	cfg.Layout.NumMNs = len(addrs)
	cfg.Layout.StripeRows = *stripes
	cfg.Layout.PoolBlocks = *pool
	cfg.CkptInterval = *ckpt
	if *mn < 0 || *mn >= len(addrs) {
		log.Fatalf("mn %d out of range for %d peers", *mn, len(addrs))
	}

	pl := tcpnet.New(addrs, rdma.NodeID(*mn), true)
	pl.SetOptions(opt)
	// Every process this daemon spawns (server daemons, master) runs
	// with an instrumented ctx feeding the /metrics verb counters.
	ipl := obs.Instrument(pl, obs.NewFabricMetrics())
	ft, err := core.OpenFT(cfg, ipl)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	// The aceso mode exposes its core cluster for the daemon-only
	// wiring (tracer, per-MN server start, master); the replication
	// modes installed their handlers at open and run no daemons.
	var cl *core.Cluster
	if a, ok := ft.(interface{ Core() *core.Cluster }); ok {
		cl = a.Core()
	}
	if cl != nil {
		// Install the span tracer before any process spawns, so server
		// daemons and clients all run traced ctxs.
		ipl.SetTracer(cl.Tracer())
		cl.StartServers()
		if *master {
			cl.StartMaster()
			log.Printf("master running (checkpoint interval %v)", cfg.CkptInterval)
		}
	} else {
		if *master {
			log.Printf("-master ignored: ftmode %s runs no master", ft.Mode())
		}
		if err := ft.Start(); err != nil {
			log.Fatalf("start %s: %v", ft.Mode(), err)
		}
	}
	if *metricsAddr != "" {
		exp := &obs.Exporter{
			Fabric:      ipl.Metrics(),
			Transport:   pl.TransportStats,
			Ready:       ft.Ready,
			Version:     version,
			FabricName:  "tcpnet",
			FTMode:      ft.Mode(),
			EnablePprof: *pprofOn,
		}
		if cl != nil {
			exp.Gauges = func() map[string]float64 { return serverGauges(cl.Server(*mn).Stats()) }
			exp.Trace = cl.Trace()
			exp.Tracer = cl.Tracer()
			exp.Ready = cl.Ready
			exp.Cache = cl.CacheMetrics()
			exp.Write = cl.WriteMetrics()
		}
		go func() {
			if err := http.ListenAndServe(*metricsAddr, exp.Handler()); err != nil {
				log.Printf("metrics server: %v", err)
			}
		}()
		log.Printf("metrics on http://%s/metrics", *metricsAddr)
		if *pprofOn {
			log.Printf("pprof on http://%s/debug/pprof/", *metricsAddr)
		}
	}
	if cl != nil {
		log.Printf("mn%d serving on %s (%d MB pool memory, %d stripes)",
			*mn, pl.Addr(), cl.L.MemBytes()>>20, cfg.Layout.StripeRows)
	} else {
		log.Printf("mn%d serving on %s (ftmode %s)", *mn, pl.Addr(), ft.Mode())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	pl.Close()
}

// serverGauges flattens a ServerStats snapshot into the /metrics gauge
// map (names become aceso_<name>).
func serverGauges(st core.ServerStats) map[string]float64 {
	return map[string]float64{
		"index_version":               float64(st.IndexVersion),
		"reclaimed_blocks_total":      float64(st.Reclaimed),
		"bitmap_updates_total":        float64(st.BitsApplied),
		"ckpt_rounds_total":           float64(st.CkptRounds),
		"ckpt_bytes_total":            float64(st.CkptBytes),
		"ckpt_applies_total":          float64(st.CkptApplies),
		"ckpt_ship_failures_total":    float64(st.CkptShipFailures),
		"ckpt_dirty_segments":         float64(st.CkptDirtySegs),
		"ckpt_segments_shipped_total": float64(st.CkptSegsShipped),
		"ckpt_raw_bytes_total":        float64(st.CkptRawBytes),
		"ckpt_cpu_seconds_total":      float64(st.CkptCPUNs) / 1e9,
		"ckpt_compress_ratio":         ckptRatio(st),
		"encode_batches_total":        float64(st.EncodeJobs),
		"encode_drops_total":          float64(st.EncodeDrops),
		"encode_queue":                float64(st.EncodeQueue),
		"ec_encode_bytes_total":       float64(st.ECEncodeBytes),
		"ec_encode_seconds_total":     float64(st.ECEncodeNs) / 1e9,
		"ec_encode_batches_total":     float64(st.ECEncodeBatches),
		"ec_decode_bytes_total":       float64(st.ECDecodeBytes),
		"ec_decode_seconds_total":     float64(st.ECDecodeNs) / 1e9,
		"pool_blocks":                 float64(st.PoolBlocks),
		"pool_blocks_free":            float64(st.PoolFree),
		"pool_blocks_delta":           float64(st.PoolDelta),
		"pool_blocks_copy":            float64(st.PoolCopy),
		"pool_blocks_data":            float64(st.PoolData),
	}
}

// ckptRatio is shipped-compressed bytes over pre-compression raw bytes
// (lower is better; 1.0 when nothing compressed yet).
func ckptRatio(st core.ServerStats) float64 {
	if st.CkptRawBytes == 0 {
		return 1
	}
	return float64(st.CkptBytes) / float64(st.CkptRawBytes)
}
