// Command acesocli is an interactive client for an Aceso group served
// by acesod daemons:
//
//	acesocli -peers :7000,:7001,:7002,:7003,:7004
//	> set greeting hello-disaggregated-world
//	> get greeting
//	hello-disaggregated-world
//	> del greeting
//	> get greeting
//	(not found)
//
// Start it with the same -peers and geometry flags as the daemons.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/rdma/tcpnet"
)

func main() {
	peers := flag.String("peers", "", "comma-separated addresses of all memory nodes, in id order")
	cfg := core.DefaultConfig()
	flag.Uint64Var(&cfg.Layout.IndexBytes, "index-bytes", cfg.Layout.IndexBytes, "index area bytes per MN")
	flag.Uint64Var(&cfg.Layout.BlockSize, "block-size", cfg.Layout.BlockSize, "memory block size")
	stripes := flag.Int("stripes", cfg.Layout.StripeRows, "coding stripe rows")
	pool := flag.Int("pool", cfg.Layout.PoolBlocks, "delta/copy pool blocks per MN")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 {
		log.Fatalf("need at least 2 peers, got %q", *peers)
	}
	cfg.Layout.NumMNs = len(addrs)
	cfg.Layout.StripeRows = *stripes
	cfg.Layout.PoolBlocks = *pool

	pl := tcpnet.New(addrs, 0, false)
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	cn := pl.AddComputeNode()

	done := make(chan struct{})
	cl.SpawnClient(cn, "acesocli", func(c *core.Client) {
		defer close(done)
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("> ")
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) > 0 {
				if quit := execute(c, fields); quit {
					return
				}
			}
			fmt.Print("> ")
		}
	})
	<-done
	pl.Close()
}

func execute(c *core.Client, fields []string) (quit bool) {
	switch fields[0] {
	case "get":
		if len(fields) != 2 {
			fmt.Println("usage: get <key>")
			return
		}
		v, err := c.Search([]byte(fields[1]))
		switch {
		case errors.Is(err, core.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fmt.Println("error:", err)
		default:
			fmt.Println(string(v))
		}
	case "set":
		if len(fields) != 3 {
			fmt.Println("usage: set <key> <value>")
			return
		}
		if err := c.Update([]byte(fields[1]), []byte(fields[2])); err != nil {
			fmt.Println("error:", err)
		}
	case "del":
		if len(fields) != 2 {
			fmt.Println("usage: del <key>")
			return
		}
		err := c.Delete([]byte(fields[1]))
		switch {
		case errors.Is(err, core.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fmt.Println("error:", err)
		}
	case "stats":
		s := c.Stats
		fmt.Printf("ops=%d cas=%d reads=%d writes=%d casRetries=%d cacheHits=%d\n",
			s.Ops, s.CASIssued, s.ReadsIssued, s.WritesIssued, s.CASRetries, s.CacheHits)
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("commands: get <k> | set <k> <v> | del <k> | stats | quit")
	default:
		fmt.Println("unknown command (try: help)")
	}
	return false
}
