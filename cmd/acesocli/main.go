// Command acesocli is an interactive client for an Aceso group served
// by acesod daemons:
//
//	acesocli -peers :7000,:7001,:7002,:7003,:7004
//	> set greeting hello-disaggregated-world
//	> get greeting
//	hello-disaggregated-world
//	> del greeting
//	> get greeting
//	(not found)
//
// It doubles as the fault-injection console for a live group:
//
//	> kill 1                      crash mn1 (fail-stop; master recovers it)
//	> chaos 2 7 0.02 0.1 1ms 0.02 seeded drop/delay/reset injection on mn2
//	> chaos 2                     clear injection on mn2
//
// Start it with the same -peers, -ftmode and geometry flags as the
// daemons. Against replication-mode daemons the KV commands work
// unchanged; the Aceso-only commands (chaos, trace, stats <mn>) report
// that the mode does not serve them.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/ftmode"
	// Link every fault-tolerance mode into the -ftmode registry.
	_ "repro/internal/ftmodes"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/tcpnet"
	"repro/internal/stats"
)

func main() {
	peers := flag.String("peers", "", "comma-separated addresses of all memory nodes, in id order")
	cfg := core.DefaultConfig()
	flag.StringVar(&cfg.FTMode, "ftmode", core.FTModeAceso, "fault-tolerance mode (must match the daemons): "+strings.Join(core.FTModes(), " | "))
	flag.Uint64Var(&cfg.Layout.IndexBytes, "index-bytes", cfg.Layout.IndexBytes, "index area bytes per MN")
	flag.Uint64Var(&cfg.Layout.BlockSize, "block-size", cfg.Layout.BlockSize, "memory block size")
	stripes := flag.Int("stripes", cfg.Layout.StripeRows, "coding stripe rows")
	pool := flag.Int("pool", cfg.Layout.PoolBlocks, "delta/copy pool blocks per MN")
	flag.IntVar(&cfg.Layout.CkptSegments, "ckpt-segments", cfg.Layout.CkptSegments, "checkpoint index segments (geometry: must match the daemons)")
	flag.IntVar(&cfg.TraceSample, "trace-sample", 1, "op-span sampling: 1 in N of this client's ops records a span tree (<0 disables)")
	flag.IntVar(&cfg.CacheEntries, "cache-entries", cfg.CacheEntries, "client index cache entry bound (0 = default 16384, <0 disables)")
	flag.IntVar(&cfg.OffloadBuckets, "offload-buckets", cfg.OffloadBuckets, "hot-bucket mirror budget (0 disables the offload)")
	flag.BoolVar(&cfg.CacheNegative, "cache-negative", cfg.CacheNegative, "cache negative GET conclusions validated by bucket version reads")
	flag.BoolVar(&cfg.CacheValues, "cache-values", cfg.CacheValues, "cache committed values; hits cost one 8-byte slot validation read")
	flag.BoolVar(&cfg.FusedCommit, "fused-commit", cfg.FusedCommit, "fuse the commit CAS into the placement doorbell on ordered fabrics (single-RTT updates)")
	flag.BoolVar(&cfg.BlockPrefetch, "block-prefetch", cfg.BlockPrefetch, "pre-provision DATA/DELTA blocks on a per-client background worker")
	flag.Parse()

	addrs := strings.Split(*peers, ",")
	if len(addrs) < 2 {
		log.Fatalf("need at least 2 peers, got %q", *peers)
	}
	cfg.Layout.NumMNs = len(addrs)
	cfg.Layout.StripeRows = *stripes
	cfg.Layout.PoolBlocks = *pool

	pl := tcpnet.New(addrs, 0, false)
	transportStats = pl.TransportStats
	ipl := obs.Instrument(pl, obs.NewFabricMetrics())
	ft, err := core.OpenFT(cfg, ipl)
	if err != nil {
		log.Fatalf("cluster: %v", err)
	}
	ftModeName = ft.Mode()
	if a, ok := ft.(interface{ Core() *core.Cluster }); ok {
		cl := a.Core()
		ipl.SetTracer(cl.Tracer())
		localSpans = cl.Tracer().Snapshot
		localEvents = cl.Trace().Events
	}
	cn := ipl.AddComputeNode()

	done := make(chan struct{})
	ft.SpawnClient(cn, "acesocli", func(c ftmode.Client) {
		defer close(done)
		sc := bufio.NewScanner(os.Stdin)
		fmt.Print("> ")
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) > 0 {
				if quit := execute(c, fields); quit {
					return
				}
			}
			fmt.Print("> ")
		}
	})
	<-done
	pl.Close()
}

// ftModeName labels the stats output; set in main once the mode opens.
var ftModeName = core.FTModeAceso

// transportStats reads the process-wide fabric counters; set in main
// once the platform exists.
var transportStats func() rdma.TransportStats

// localSpans / localEvents snapshot this process's own span tracer
// and event ring; set in main. On a multi-process fabric the MN's
// rings only hold server-side spans and events — the client op→verb
// trees and locally injected faults (fail.inject from a kill issued
// here) live in this process, so the trace command merges both.
var localSpans func() []obs.Span
var localEvents func() []obs.Event

func execute(c ftmode.Client, fields []string) (quit bool) {
	switch fields[0] {
	case "get":
		if len(fields) != 2 {
			fmt.Println("usage: get <key>")
			return
		}
		v, err := c.Search([]byte(fields[1]))
		switch {
		case errors.Is(err, core.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fmt.Println("error:", err)
		default:
			fmt.Println(string(v))
		}
	case "set":
		if len(fields) != 3 {
			fmt.Println("usage: set <key> <value>")
			return
		}
		if err := c.Update([]byte(fields[1]), []byte(fields[2])); err != nil {
			fmt.Println("error:", err)
		}
	case "del":
		if len(fields) != 2 {
			fmt.Println("usage: del <key>")
			return
		}
		err := c.Delete([]byte(fields[1]))
		switch {
		case errors.Is(err, core.ErrNotFound):
			fmt.Println("(not found)")
		case err != nil:
			fmt.Println("error:", err)
		}
	case "stats":
		switch len(fields) {
		case 1:
			fmt.Printf("ftmode=%s\n", ftModeName)
			if cc, ok := c.(*core.Client); ok {
				s := cc.Stats
				fmt.Printf("ops=%d (search=%d insert=%d update=%d delete=%d) cas=%d reads=%d writes=%d casRetries=%d cacheHits=%d cacheMisses=%d degraded=%d invalidations=%d\n",
					s.Ops, s.Searches, s.Inserts, s.Updates, s.Deletes,
					s.CASIssued, s.ReadsIssued, s.WritesIssued, s.CASRetries,
					s.CacheHits, s.CacheMisses, s.DegradedReads, s.Invalidations)
				entries, bytes, offloaded, evictions := cc.CacheStats()
				fmt.Printf("cache: entries=%d bytes=%d negHits=%d evictions=%d mirror{buckets=%d hits=%d negHits=%d}\n",
					entries, bytes, s.CacheNegHits, evictions,
					offloaded, s.MirrorHits, s.MirrorNegHits)
				fmt.Printf("write: fused=%d fallback=%d deltaSkips=%d prefetch{hits=%d misses=%d}\n",
					s.WriteFused, s.WriteFallback, s.DeltaSkips,
					s.BlockPrefetchHits, s.BlockPrefetchMisses)
			} else {
				cas, reads, writes := c.Counters()
				fmt.Printf("cas=%d reads=%d writes=%d\n", cas, reads, writes)
			}
			if transportStats != nil {
				t := transportStats()
				fmt.Printf("transport: openConns=%d", t.OpenConns)
				if len(t.OpenConnsByNode) > 0 {
					nodes := make([]int, 0, len(t.OpenConnsByNode))
					for n := range t.OpenConnsByNode {
						nodes = append(nodes, int(n))
					}
					sort.Ints(nodes)
					parts := make([]string, 0, len(nodes))
					for _, n := range nodes {
						parts = append(parts, fmt.Sprintf("mn%d:%d", n, t.OpenConnsByNode[rdma.NodeID(n)]))
					}
					fmt.Printf(" (%s)", strings.Join(parts, " "))
				}
				fmt.Printf(" dials=%d redials=%d retries=%d nodeFailures=%d pool{gets=%d puts=%d allocs=%d}\n",
					t.Dials, t.Redials, t.Retries, t.NodeFailures,
					t.PoolGets, t.PoolPuts, t.PoolAllocs)
			}
		case 2:
			mn, err := strconv.Atoi(fields[1])
			if err != nil {
				fmt.Println("error: mn must be an integer")
				return
			}
			printMNStats(c, mn)
		default:
			fmt.Println("usage: stats [<mn>]")
		}
	case "kill":
		if len(fields) != 2 {
			fmt.Println("usage: kill <mn>")
			return
		}
		mn, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("error: mn must be an integer")
			return
		}
		killer, ok := c.(interface{ KillMN(mn int) error })
		if !ok {
			fmt.Printf("ftmode %s does not serve the admin kill verb\n", ftModeName)
			return
		}
		if err := killer.KillMN(mn); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Printf("fail-stop injected on mn%d\n", mn)
		}
	case "chaos":
		if len(fields) != 2 && len(fields) != 7 {
			fmt.Println("usage: chaos <mn> [<seed> <dropProb> <delayProb> <maxDelay> <resetProb>]")
			fmt.Println("       chaos <mn>   (no further args) clears injection")
			return
		}
		mn, err := strconv.Atoi(fields[1])
		if err != nil {
			fmt.Println("error: mn must be an integer")
			return
		}
		var cfg rdma.ChaosConfig
		if len(fields) == 7 {
			cfg, err = parseChaos(fields[2:])
			if err != nil {
				fmt.Println("error:", err)
				return
			}
		}
		chaoser, ok := c.(interface {
			ChaosMN(mn int, cfg rdma.ChaosConfig) error
		})
		if !ok {
			fmt.Printf("ftmode %s does not serve the admin chaos verb\n", ftModeName)
			return
		}
		if err := chaoser.ChaosMN(mn, cfg); err != nil {
			fmt.Println("error:", err)
		} else if cfg.Enabled() {
			fmt.Printf("chaos installed on mn%d: drop=%.3f delay=%.3f(max %v) reset=%.3f seed=%d\n",
				mn, cfg.DropProb, cfg.DelayProb, cfg.MaxDelay, cfg.ResetProb, cfg.Seed)
		} else {
			fmt.Printf("chaos cleared on mn%d\n", mn)
		}
	case "trace":
		tracer, ok := c.(interface {
			TraceMN(mn, max int) ([]obs.Span, []obs.Event, error)
		})
		if !ok {
			fmt.Printf("ftmode %s does not serve the admin trace verb\n", ftModeName)
			return
		}
		fetch := func(mn, max int) ([]obs.Span, []obs.Event, error) {
			spans, events, err := tracer.TraceMN(mn, max)
			if err != nil {
				return nil, nil, err
			}
			if localSpans != nil {
				local := localSpans()
				if max > 0 && len(local) > max {
					local = local[len(local)-max:]
				}
				spans = append(spans, local...)
			}
			if localEvents != nil {
				events = append(events, localEvents()...)
			}
			return spans, events, nil
		}
		if err := traceCmd(fetch, fields[1:], os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case "quit", "exit":
		return true
	case "help":
		fmt.Println("commands: get <k> | set <k> <v> | del <k> | stats [<mn>] | quit")
		fmt.Println("  stats        this client's local operation counters")
		fmt.Println("  stats <mn>   memory node <mn>'s server counters over the admin RPC")
		fmt.Println("  trace <mn> [n] [file]   dump mn's newest n op spans + ring events as")
		fmt.Println("                          Chrome trace_event JSON (default trace.json; \"-\" = stdout)")
		fmt.Println("fault injection: kill <mn> | chaos <mn> [<seed> <drop> <delay> <maxDelay> <reset>]")
	default:
		fmt.Println("unknown command (try: help)")
	}
	return false
}

// traceCmd implements the `trace` REPL command: fetch a memory node's
// span ring + event ring over the admin Trace RPC and write them as
// Chrome trace_event JSON (load in Perfetto / chrome://tracing). The
// fetcher is injected so tests can golden the rendering without a
// live group.
//
//	trace <mn> [n] [file]
//
// n bounds the dump to the newest n spans (0 = all retained); file
// defaults to trace.json, "-" writes to out.
func traceCmd(fetch func(mn, max int) ([]obs.Span, []obs.Event, error), args []string, out io.Writer) error {
	if len(args) < 1 || len(args) > 3 {
		return errors.New("usage: trace <mn> [n] [file]")
	}
	mn, err := strconv.Atoi(args[0])
	if err != nil {
		return fmt.Errorf("mn must be an integer: %w", err)
	}
	max := 0
	if len(args) >= 2 {
		if max, err = strconv.Atoi(args[1]); err != nil || max < 0 {
			return fmt.Errorf("n must be a non-negative integer")
		}
	}
	file := "trace.json"
	if len(args) == 3 {
		file = args[2]
	}
	spans, events, err := fetch(mn, max)
	if err != nil {
		return err
	}
	if file == "-" {
		if err := obs.WriteChromeTrace(out, spans, events); err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%d spans, %d events\n", len(spans), len(events))
		return nil
	}
	f, err := os.Create(file)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeTrace(f, spans, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d spans, %d events)\n", file, len(spans), len(events))
	return nil
}

// printMNStats fetches a memory node's server counters over the admin
// Stats RPC and renders them as an aligned table.
func printMNStats(c ftmode.Client, mn int) {
	statser, ok := c.(interface {
		StatsMN(mn int) (core.ServerStats, error)
	})
	if !ok {
		fmt.Printf("ftmode %s does not serve the admin stats verb\n", ftModeName)
		return
	}
	st, err := statser.StatsMN(mn)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ckpt := &stats.Series{Name: "checkpoint"}
	ckpt.Add("rounds", float64(st.CkptRounds))
	ckpt.Add("bytes", float64(st.CkptBytes))
	ckpt.Add("rawBytes", float64(st.CkptRawBytes))
	if st.CkptRawBytes > 0 {
		ckpt.Add("ratio", float64(st.CkptBytes)/float64(st.CkptRawBytes))
	}
	ckpt.Add("dirtySegs", float64(st.CkptDirtySegs))
	ckpt.Add("segsShipped", float64(st.CkptSegsShipped))
	ckpt.Add("shipFailures", float64(st.CkptShipFailures))
	ckpt.Add("cpuMs", float64(st.CkptCPUNs)/1e6)
	ckpt.Add("applies", float64(st.CkptApplies))
	ckpt.Add("indexVer", float64(st.IndexVersion))
	fmt.Print(stats.Table(fmt.Sprintf("mn%d checkpoint pipeline", st.MN), ckpt))
	enc := &stats.Series{Name: "erasure"}
	enc.Add("encoded", float64(st.EncodeJobs))
	enc.Add("dropped", float64(st.EncodeDrops))
	enc.Add("queued", float64(st.EncodeQueue))
	enc.Add("reclaimed", float64(st.Reclaimed))
	enc.Add("bitsApplied", float64(st.BitsApplied))
	enc.Add("encBatches", float64(st.ECEncodeBatches))
	enc.Add("encMB", float64(st.ECEncodeBytes)/1e6)
	enc.Add("encMs", float64(st.ECEncodeNs)/1e6)
	if st.ECEncodeNs > 0 {
		enc.Add("encGBps", float64(st.ECEncodeBytes)/float64(st.ECEncodeNs))
	}
	enc.Add("decMB", float64(st.ECDecodeBytes)/1e6)
	enc.Add("decMs", float64(st.ECDecodeNs)/1e6)
	if st.ECDecodeNs > 0 {
		enc.Add("decGBps", float64(st.ECDecodeBytes)/float64(st.ECDecodeNs))
	}
	fmt.Print(stats.Table(fmt.Sprintf("mn%d erasure coding / reclamation", st.MN), enc))
	pool := &stats.Series{Name: "blocks"}
	pool.Add("total", float64(st.PoolBlocks))
	pool.Add("free", float64(st.PoolFree))
	pool.Add("delta", float64(st.PoolDelta))
	pool.Add("copy", float64(st.PoolCopy))
	pool.Add("data", float64(st.PoolData))
	fmt.Print(stats.Table(fmt.Sprintf("mn%d delta/copy pool occupancy", st.MN), pool))
	cache := &stats.Series{Name: "cache"}
	cache.Add("hits", float64(st.CacheHits))
	cache.Add("misses", float64(st.CacheMisses))
	cache.Add("negHits", float64(st.CacheNegHits))
	cache.Add("evictions", float64(st.CacheEvictions))
	cache.Add("mirrorHits", float64(st.CacheMirrorHits))
	cache.Add("mirrorNegHits", float64(st.CacheMirrorNegHits))
	cache.Add("entries", float64(st.CacheEntries))
	cache.Add("bytes", float64(st.CacheBytes))
	cache.Add("offloaded", float64(st.CacheOffloaded))
	fmt.Print(stats.Table(fmt.Sprintf("mn%d client index cache (co-resident clients)", st.MN), cache))
	wr := &stats.Series{Name: "write"}
	wr.Add("fused", float64(st.WriteFused))
	wr.Add("fallbacks", float64(st.WriteFallbacks))
	wr.Add("prefetchHits", float64(st.PrefetchHits))
	wr.Add("prefetchMisses", float64(st.PrefetchMisses))
	wr.Add("deltaSkips", float64(st.DeltaSkips))
	fmt.Print(stats.Table(fmt.Sprintf("mn%d fused write path (co-resident clients)", st.MN), wr))
}

// parseChaos decodes "<seed> <dropProb> <delayProb> <maxDelay> <resetProb>",
// e.g. "7 0.02 0.1 1ms 0.02".
func parseChaos(fields []string) (rdma.ChaosConfig, error) {
	var cfg rdma.ChaosConfig
	seed, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return cfg, fmt.Errorf("seed: %w", err)
	}
	drop, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return cfg, fmt.Errorf("dropProb: %w", err)
	}
	delay, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return cfg, fmt.Errorf("delayProb: %w", err)
	}
	maxDelay, err := time.ParseDuration(fields[3])
	if err != nil {
		return cfg, fmt.Errorf("maxDelay: %w", err)
	}
	reset, err := strconv.ParseFloat(fields[4], 64)
	if err != nil {
		return cfg, fmt.Errorf("resetProb: %w", err)
	}
	return rdma.ChaosConfig{
		Seed:      seed,
		DropProb:  drop,
		DelayProb: delay,
		MaxDelay:  maxDelay,
		ResetProb: reset,
	}, nil
}
