package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeFetch stands in for Client.TraceMN: a canned span tree (one GET
// op with a verb child) plus one ring instant, as a live MN returns.
func fakeFetch(mn, max int) ([]obs.Span, []obs.Event, error) {
	spans := []obs.Span{
		{Seq: 1, Trace: 9, Kind: obs.SpanVerb, Node: int32(mn), Tid: 1, Name: "read",
			Start: 10 * time.Microsecond, End: 22 * time.Microsecond},
		{Seq: 2, Trace: 9, Kind: obs.SpanOp, Node: -1, Tid: 1, Name: "get",
			Start: 5 * time.Microsecond, End: 30 * time.Microsecond},
	}
	if max == 1 {
		spans = spans[1:]
	}
	events := []obs.Event{
		{Seq: 0, At: 40 * time.Microsecond, Kind: "fail.inject", MN: mn, Note: "admin kill"},
	}
	return spans, events, nil
}

const wantTraceJSON = `{"displayTimeUnit":"ns","traceEvents":[` +
	`{"name":"read","cat":"verb","ph":"X","ts":10.000,"dur":12.000,"pid":0,"tid":1,"args":{"seq":1,"trace":9,"node":2,"wall_start_ns":0,"wall_end_ns":0}},` +
	`{"name":"get","cat":"op","ph":"X","ts":5.000,"dur":25.000,"pid":0,"tid":1,"args":{"seq":2,"trace":9,"node":-1,"wall_start_ns":0,"wall_end_ns":0}},` +
	`{"name":"fail.inject","cat":"ring","ph":"i","s":"g","ts":40.000,"pid":2,"tid":0,"args":{"seq":0,"mn":2,"note":"admin kill"}}` +
	`]}`

func TestTraceCmdGolden(t *testing.T) {
	file := filepath.Join(t.TempDir(), "trace.json")
	var out strings.Builder
	if err := traceCmd(fakeFetch, []string{"2", "0", file}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != wantTraceJSON {
		t.Errorf("trace JSON mismatch\n got: %s\nwant: %s", got, wantTraceJSON)
	}
	if !strings.Contains(out.String(), "wrote "+file+" (2 spans, 1 events)") {
		t.Errorf("status line = %q", out.String())
	}
	// The file must be loadable JSON with the Perfetto top-level shape.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(got, &doc); err != nil {
		t.Fatalf("output does not parse as JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Errorf("parsed %d events, want 3", len(doc.TraceEvents))
	}
}

func TestTraceCmdStdoutAndLimit(t *testing.T) {
	var out strings.Builder
	if err := traceCmd(fakeFetch, []string{"2", "1", "-"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, `"name":"get"`) || strings.Contains(s, `"name":"read"`) {
		t.Errorf("n=1 should keep only the newest span:\n%s", s)
	}
	if !strings.Contains(s, "1 spans, 1 events") {
		t.Errorf("status line missing:\n%s", s)
	}
}

func TestTraceCmdUsageErrors(t *testing.T) {
	for _, args := range [][]string{{}, {"x"}, {"1", "-3"}, {"1", "2", "f", "extra"}} {
		if err := traceCmd(fakeFetch, args, &strings.Builder{}); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
