// Package aceso is a Go implementation of Aceso (SOSP 2024), a
// memory-disaggregated key-value store with hybrid fault tolerance:
// differential checkpointing with slot versioning protects the hash
// index, offline XOR erasure coding with delta-based space reclamation
// protects the KV pairs, and a tiered scheme recovers a crashed memory
// node's functionality in index-recovery time.
//
// The package is a facade over internal/core. A cluster runs on one of
// two fabrics behind the same API: the deterministic simulated RDMA
// fabric (NewSimCluster — used by all benchmarks; virtual time,
// calibrated NIC cost model) or the real TCP transport (NewTCPCluster —
// every memory node serves its own loopback listener, wall clock; the
// same fabric cmd/acesod deploys across processes).
//
// Quickstart:
//
//	cluster, _ := aceso.NewSimCluster(aceso.DefaultConfig())
//	cluster.Start()
//	cluster.RunClient("app", func(c *aceso.Client) {
//		c.Insert([]byte("k"), []byte("v"))
//		v, _ := c.Search([]byte("k"))
//		fmt.Println(string(v))
//	})
package aceso

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
	"repro/internal/rdma/tcpnet"
)

// Config parameterises a coding group; see the field docs in
// internal/core. DefaultConfig matches the paper's setup (5 MNs,
// 3 data + 2 parity per stripe, 2 MB blocks, 500 ms checkpoints),
// scaled down in memory footprint.
type Config = core.Config

// Client executes KV requests (INSERT, UPDATE, SEARCH, DELETE) with
// one-sided verbs. Bind one client per process via RunClient.
type Client = core.Client

// ClientStats is a client's operation/cache/retry counter set,
// readable as Client.Stats from inside the client's own process.
type ClientStats = core.ClientStats

// RecoveryReport breaks a memory-node recovery into the tiers of
// §3.4.1 / Table 2.
type RecoveryReport = core.RecoveryReport

// MemoryUsage is the Block Area space accounting (Figure 12).
type MemoryUsage = core.MemoryUsage

// ChaosConfig parameterises probabilistic fault injection on a memory
// node (drops, delays, connection resets; seedable).
type ChaosConfig = rdma.ChaosConfig

// TraceEvent is one structured entry of the cluster's trace ring
// (failure detections, per-tier recovery phase timings).
type TraceEvent = obs.Event

// ServerStats is one memory node's management-plane counter snapshot
// (checkpoint rounds/bytes, encode batches, pool occupancy).
type ServerStats = core.ServerStats

// TransportStats is the fabric transport's fault/retry telemetry
// (reconnects, retries, chaos injections). All zero on the simulated
// fabric, which has no transport layer to fault.
type TransportStats = rdma.TransportStats

// Errors re-exported from the client.
var (
	ErrNotFound = core.ErrNotFound
	ErrNoSpace  = core.ErrNoSpace
)

// DefaultConfig returns the paper-default configuration, scaled down.
func DefaultConfig() Config { return core.DefaultConfig() }

// fabric abstracts what the facade needs from a platform beyond
// rdma.Platform: compute-node allocation, a clock, and a way to drive
// time until a condition holds (virtual stepping on simnet, polling on
// wall-clock fabrics).
type fabric interface {
	platform() rdma.Platform
	addComputeNode() rdma.NodeID
	advance(d time.Duration)
	runUntil(cond func() bool) bool
	now() time.Duration
	close()
}

// simFabric drives the deterministic discrete-event engine.
type simFabric struct{ pl *simnet.Platform }

func (f *simFabric) platform() rdma.Platform     { return f.pl }
func (f *simFabric) addComputeNode() rdma.NodeID { return f.pl.AddComputeNode() }
func (f *simFabric) advance(d time.Duration)     { f.pl.Run(f.pl.Engine().Now() + d) }
func (f *simFabric) now() time.Duration          { return f.pl.Engine().Now() }
func (f *simFabric) close()                      { f.pl.Shutdown() }
func (f *simFabric) runUntil(cond func() bool) bool {
	eng := f.pl.Engine()
	limit := eng.Now() + time.Hour // virtual-time safety limit
	for !cond() && eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
	}
	return cond()
}

// tcpFabric runs on the wall clock; time advances by itself, so
// driving it means sleeping and polling.
type tcpFabric struct {
	pl    *tcpnet.Platform
	start time.Time
}

func (f *tcpFabric) platform() rdma.Platform     { return f.pl }
func (f *tcpFabric) addComputeNode() rdma.NodeID { return f.pl.AddComputeNode() }
func (f *tcpFabric) advance(d time.Duration)     { time.Sleep(d) }
func (f *tcpFabric) now() time.Duration          { return time.Since(f.start) }
func (f *tcpFabric) close()                      { f.pl.Close() }
func (f *tcpFabric) runUntil(cond func() bool) bool {
	limit := time.Now().Add(60 * time.Second) // wall-clock safety limit
	for !cond() {
		if time.Now().After(limit) {
			return cond()
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// Cluster is one Aceso coding group plus its master, running inside
// this process on either fabric.
type Cluster struct {
	fab     fabric
	cl      *core.Cluster
	started bool

	mu      sync.Mutex // guards pending/done (client bodies finish on goroutines)
	pending int
	done    int
}

// NewSimCluster creates a cluster of cfg.Layout.NumMNs memory nodes on
// a fresh simulated fabric. Call Start before running clients.
func NewSimCluster(cfg Config) (*Cluster, error) {
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		return nil, err
	}
	return &Cluster{fab: &simFabric{pl: pl}, cl: cl}, nil
}

// NewTCPCluster creates the same coding group on the real TCP fabric:
// every memory node serves a loopback listener and all verbs cross
// real sockets, so failure injection exercises genuine connection
// teardown, reconnects and retry budgets. Time is the wall clock
// (Advance sleeps; RunUntil polls).
func NewTCPCluster(cfg Config) (*Cluster, error) {
	pl := tcpnet.NewGroup()
	pl.SetOptions(tcpnet.Options{
		OpTimeout:   time.Second,
		RetryBudget: 2 * time.Second,
		BackoffBase: time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	})
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		return nil, err
	}
	return &Cluster{fab: &tcpFabric{pl: pl, start: time.Now()}, cl: cl}, nil
}

// Start launches the memory-node servers and the master (membership,
// checkpoint rounds, failure handling), and provisions one spare MN
// for recovery.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.cl.StartServers()
	c.cl.StartMaster().AddSpare()
	c.started = true
}

// AddSpare provisions another idle memory node for recovery.
func (c *Cluster) AddSpare() { c.cl.Master().AddSpare() }

// RunClient executes fn as a client process on its own compute node
// and drives time until fn returns. It is the synchronous convenience
// wrapper; use SpawnClient to run several concurrently.
func (c *Cluster) RunClient(name string, fn func(*Client)) {
	var mu sync.Mutex
	done := false
	c.SpawnClient(name, func(cli *Client) {
		fn(cli)
		mu.Lock()
		done = true
		mu.Unlock()
	})
	c.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	})
}

// SpawnClient starts fn as a client process without advancing time;
// combine with RunUntil or Wait.
func (c *Cluster) SpawnClient(name string, fn func(*Client)) {
	cn := c.fab.addComputeNode()
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
	c.cl.SpawnClient(cn, name, func(cli *Client) {
		fn(cli)
		c.mu.Lock()
		c.done++
		c.mu.Unlock()
	})
}

// Advance moves time forward by d (virtual on the simulated fabric, a
// real sleep on TCP).
func (c *Cluster) Advance(d time.Duration) { c.fab.advance(d) }

// RunUntil drives time until cond holds (or the fabric's safety limit
// passes: an hour of virtual time, a minute of wall clock). It reports
// whether cond held.
func (c *Cluster) RunUntil(cond func() bool) bool { return c.fab.runUntil(cond) }

// Wait drives time until every spawned client has returned.
func (c *Cluster) Wait() bool {
	return c.RunUntil(func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.done >= c.pending
	})
}

// Now returns the current time (virtual or wall, by fabric).
func (c *Cluster) Now() time.Duration { return c.fab.now() }

// FailMN injects a fail-stop crash of logical memory node mn. The
// master detects it and runs tiered recovery onto a spare. On the TCP
// fabric this tears down the node's listener and live connections for
// real.
func (c *Cluster) FailMN(mn int) { c.cl.FailMN(mn) }

// SetChaos installs (or, with a zero config, clears) probabilistic
// drop/delay/reset injection on the node serving logical MN mn.
func (c *Cluster) SetChaos(mn int, cfg ChaosConfig) {
	if fi, ok := c.fab.platform().(rdma.FaultInjector); ok {
		fi.SetChaos(c.cl.MNNode(mn), cfg)
	}
}

// MNState reports a memory node's recovery progress: failed (down),
// indexReady (tier 2 done: writes at full speed, reads degraded) and
// blocksReady (tier 3 done: fully recovered).
func (c *Cluster) MNState(mn int) (failed, indexReady, blocksReady bool) {
	return c.cl.MNState(mn)
}

// RecoveryReports returns the reports of completed MN recoveries.
func (c *Cluster) RecoveryReports() []*RecoveryReport {
	return c.cl.Master().ReportList()
}

// Trace returns the cluster's trace events oldest-first: failure
// detections and per-tier recovery phase timings, stamped with the
// fabric clock.
func (c *Cluster) Trace() []TraceEvent { return c.cl.Trace().Events() }

// MNStats snapshots the management-plane counters of logical MN mn
// (in-process; remote daemons are queried with Client.StatsMN).
func (c *Cluster) MNStats(mn int) ServerStats { return c.cl.Server(mn).Stats() }

// TransportStats returns the fabric's transport-level fault/retry
// counters (zero on the simulated fabric).
func (c *Cluster) TransportStats() TransportStats {
	if src, ok := c.fab.platform().(rdma.TransportStatsSource); ok {
		return src.TransportStats()
	}
	return TransportStats{}
}

// MemoryUsage scans the group's Block Areas (Figure 12 accounting).
func (c *Cluster) MemoryUsage() MemoryUsage { return c.cl.MemoryUsage() }

// Reclaimed returns how many blocks were handed out through
// delta-based space reclamation (§3.3.3).
func (c *Cluster) Reclaimed() int { return c.cl.Reclaimed() }

// NumMNs returns the coding-group size.
func (c *Cluster) NumMNs() int { return c.cl.Cfg.Layout.NumMNs }

// Close unwinds the fabric. The cluster must not be used afterwards.
func (c *Cluster) Close() { c.fab.close() }

// Internal returns the underlying core cluster and platform for
// advanced instrumentation (benchmark harnesses).
func (c *Cluster) Internal() (*core.Cluster, rdma.Platform) { return c.cl, c.fab.platform() }
