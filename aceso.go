// Package aceso is a Go implementation of Aceso (SOSP 2024), a
// memory-disaggregated key-value store with hybrid fault tolerance:
// differential checkpointing with slot versioning protects the hash
// index, offline XOR erasure coding with delta-based space reclamation
// protects the KV pairs, and a tiered scheme recovers a crashed memory
// node's functionality in index-recovery time.
//
// The package is a facade over internal/core. A cluster runs either on
// the deterministic simulated RDMA fabric (NewSimCluster — used by all
// benchmarks; virtual time, calibrated NIC cost model) or on real TCP
// transport via cmd/acesod and the tcpnet fabric.
//
// Quickstart:
//
//	cluster, _ := aceso.NewSimCluster(aceso.DefaultConfig())
//	cluster.Start()
//	cluster.RunClient("app", func(c *aceso.Client) {
//		c.Insert([]byte("k"), []byte("v"))
//		v, _ := c.Search([]byte("k"))
//		fmt.Println(string(v))
//	})
package aceso

import (
	"time"

	"repro/internal/core"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
)

// Config parameterises a coding group; see the field docs in
// internal/core. DefaultConfig matches the paper's setup (5 MNs,
// 3 data + 2 parity per stripe, 2 MB blocks, 500 ms checkpoints),
// scaled down in memory footprint.
type Config = core.Config

// Client executes KV requests (INSERT, UPDATE, SEARCH, DELETE) with
// one-sided verbs. Bind one client per process via RunClient.
type Client = core.Client

// RecoveryReport breaks a memory-node recovery into the tiers of
// §3.4.1 / Table 2.
type RecoveryReport = core.RecoveryReport

// MemoryUsage is the Block Area space accounting (Figure 12).
type MemoryUsage = core.MemoryUsage

// Errors re-exported from the client.
var (
	ErrNotFound = core.ErrNotFound
	ErrNoSpace  = core.ErrNoSpace
)

// DefaultConfig returns the paper-default configuration, scaled down.
func DefaultConfig() Config { return core.DefaultConfig() }

// Cluster is one Aceso coding group plus its master, running on a
// simulated fabric inside this process.
type Cluster struct {
	pl      *simnet.Platform
	cl      *core.Cluster
	started bool
	pending int
	// doneCh is incremented as RunClient bodies complete.
	done int
}

// NewSimCluster creates a cluster of cfg.Layout.NumMNs memory nodes on
// a fresh simulated fabric. Call Start before running clients.
func NewSimCluster(cfg Config) (*Cluster, error) {
	pl := simnet.New(simnet.DefaultConfig())
	cl, err := core.NewCluster(cfg, pl)
	if err != nil {
		return nil, err
	}
	return &Cluster{pl: pl, cl: cl}, nil
}

// Start launches the memory-node servers and the master (membership,
// checkpoint rounds, failure handling), and provisions one spare MN
// for recovery.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.cl.StartServers()
	c.cl.StartMaster().AddSpare()
	c.started = true
}

// AddSpare provisions another idle memory node for recovery.
func (c *Cluster) AddSpare() { c.cl.Master().AddSpare() }

// RunClient executes fn as a client process on its own compute node
// and drives virtual time until fn returns. It is the synchronous
// convenience wrapper; use SpawnClient to run several concurrently.
func (c *Cluster) RunClient(name string, fn func(*Client)) {
	done := false
	c.SpawnClient(name, func(cli *Client) {
		fn(cli)
		done = true
	})
	c.RunUntil(func() bool { return done })
}

// SpawnClient starts fn as a client process without advancing time;
// combine with RunUntil or Advance.
func (c *Cluster) SpawnClient(name string, fn func(*Client)) {
	cn := c.pl.AddComputeNode()
	c.pending++
	c.cl.SpawnClient(cn, name, func(cli *Client) {
		fn(cli)
		c.done++
	})
}

// Advance moves virtual time forward by d.
func (c *Cluster) Advance(d time.Duration) {
	c.pl.Run(c.pl.Engine().Now() + d)
}

// RunUntil advances virtual time until cond holds (or an hour of
// virtual time passes). It reports whether cond held.
func (c *Cluster) RunUntil(cond func() bool) bool {
	eng := c.pl.Engine()
	limit := eng.Now() + time.Hour
	for !cond() && eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
	}
	return cond()
}

// Wait advances virtual time until every spawned client has returned.
func (c *Cluster) Wait() bool {
	return c.RunUntil(func() bool { return c.done >= c.pending })
}

// Now returns the current virtual time.
func (c *Cluster) Now() time.Duration { return c.pl.Engine().Now() }

// FailMN injects a fail-stop crash of logical memory node mn. The
// master detects it and runs tiered recovery onto a spare.
func (c *Cluster) FailMN(mn int) { c.cl.FailMN(mn) }

// MNState reports a memory node's recovery progress: failed (down),
// indexReady (tier 2 done: writes at full speed, reads degraded) and
// blocksReady (tier 3 done: fully recovered).
func (c *Cluster) MNState(mn int) (failed, indexReady, blocksReady bool) {
	return c.cl.MNState(mn)
}

// RecoveryReports returns the reports of completed MN recoveries.
func (c *Cluster) RecoveryReports() []*RecoveryReport {
	return c.cl.Master().Reports
}

// MemoryUsage scans the group's Block Areas (Figure 12 accounting).
func (c *Cluster) MemoryUsage() MemoryUsage { return c.cl.MemoryUsage() }

// Reclaimed returns how many blocks were handed out through
// delta-based space reclamation (§3.3.3).
func (c *Cluster) Reclaimed() int { return c.cl.Reclaimed() }

// NumMNs returns the coding-group size.
func (c *Cluster) NumMNs() int { return c.cl.Cfg.Layout.NumMNs }

// Close unwinds the simulated fabric. The cluster must not be used
// afterwards.
func (c *Cluster) Close() { c.pl.Shutdown() }

// Internal returns the underlying core cluster and platform for
// advanced instrumentation (benchmark harnesses).
func (c *Cluster) Internal() (*core.Cluster, rdma.Platform) { return c.cl, c.pl }
