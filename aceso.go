// Package aceso is a Go implementation of Aceso (SOSP 2024), a
// memory-disaggregated key-value store with hybrid fault tolerance:
// differential checkpointing with slot versioning protects the hash
// index, offline XOR erasure coding with delta-based space reclamation
// protects the KV pairs, and a tiered scheme recovers a crashed memory
// node's functionality in index-recovery time.
//
// The package is a facade over internal/core. Open creates a cluster
// from a Config plus options: the fabric (WithFabric — the
// deterministic simulated RDMA fabric used by all benchmarks, or the
// real TCP transport cmd/acesod deploys across processes) and, through
// Config.FTMode, the fault-tolerance mode. Besides Aceso's own hybrid
// scheme ("aceso", the default) the same API serves the replication
// baselines: FUSEE-style full replication ("fusee-replication") and
// SWARM-style in-place replication ("swarm-inplace").
//
// Quickstart:
//
//	cluster, _ := aceso.Open(aceso.DefaultConfig())
//	cluster.Start()
//	cluster.RunClient("app", func(c *aceso.Client) {
//		c.Insert([]byte("k"), []byte("v"))
//		v, _ := c.Search([]byte("k"))
//		fmt.Println(string(v))
//	})
//
// Mode-generic callers (anything that must run on every ftmode) use
// RunKV/SpawnKV, which hand out the narrow KV surface instead of the
// full Aceso *Client:
//
//	cfg := aceso.DefaultConfig()
//	cfg.FTMode = "swarm-inplace"
//	cluster, _ := aceso.Open(cfg)
//	cluster.Start()
//	cluster.RunKV("app", func(c aceso.KV) { c.Insert([]byte("k"), []byte("v")) })
package aceso

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/ftmode"
	// Link every fault-tolerance mode into the registry so Config.FTMode
	// accepts all of them.
	_ "repro/internal/ftmodes"
	"repro/internal/obs"
	"repro/internal/rdma"
	"repro/internal/rdma/simnet"
	"repro/internal/rdma/tcpnet"
)

// Config parameterises a coding group; see the field docs in
// internal/core. DefaultConfig matches the paper's setup (5 MNs,
// 3 data + 2 parity per stripe, 2 MB blocks, 500 ms checkpoints),
// scaled down in memory footprint. Config.FTMode selects the
// fault-tolerance mode (empty = "aceso").
type Config = core.Config

// Client executes KV requests (INSERT, UPDATE, SEARCH, DELETE) with
// one-sided verbs. Bind one client per process via RunClient. Client is
// the full Aceso client; mode-generic code uses KV instead.
type Client = core.Client

// KV is the mode-generic client surface every fault-tolerance mode
// provides: the four verbs plus Close and the uniform verbs counters.
type KV = ftmode.Client

// Caps declares which harness surfaces the cluster's fault-tolerance
// mode implements (degraded reads, tiered recovery, read failover, …).
type Caps = ftmode.Caps

// Usage is the mode-generic space accounting (total footprint, and the
// valid/redundant split for modes that can break it down).
type Usage = ftmode.Usage

// ClientStats is a client's operation/cache/retry counter set,
// readable as Client.Stats from inside the client's own process.
type ClientStats = core.ClientStats

// RecoveryReport breaks a memory-node recovery into the tiers of
// §3.4.1 / Table 2.
type RecoveryReport = core.RecoveryReport

// MemoryUsage is the Block Area space accounting (Figure 12).
type MemoryUsage = core.MemoryUsage

// ChaosConfig parameterises probabilistic fault injection on a memory
// node (drops, delays, connection resets; seedable).
type ChaosConfig = rdma.ChaosConfig

// TraceEvent is one structured entry of the cluster's trace ring
// (failure detections, per-tier recovery phase timings).
type TraceEvent = obs.Event

// ServerStats is one memory node's management-plane counter snapshot
// (checkpoint rounds/bytes, encode batches, pool occupancy).
type ServerStats = core.ServerStats

// TransportStats is the fabric transport's fault/retry telemetry
// (reconnects, retries, chaos injections). All zero on the simulated
// fabric, which has no transport layer to fault.
type TransportStats = rdma.TransportStats

// Errors re-exported from the client. Every fault-tolerance mode's
// errors match these under errors.Is.
var (
	ErrNotFound         = core.ErrNotFound
	ErrNoSpace          = core.ErrNoSpace
	ErrRetriesExhausted = core.ErrRetriesExhausted
)

// Fault-tolerance mode names accepted in Config.FTMode.
const (
	FTModeAceso = core.FTModeAceso
	FTModeFusee = core.FTModeFusee
	FTModeSwarm = core.FTModeSwarm
)

// FTModes returns the fault-tolerance modes linked into this binary,
// sorted.
func FTModes() []string { return core.FTModes() }

// DefaultConfig returns the paper-default configuration, scaled down.
func DefaultConfig() Config { return core.DefaultConfig() }

// fabric abstracts what the facade needs from a platform beyond
// rdma.Platform: compute-node allocation, a clock, and a way to drive
// time until a condition holds (virtual stepping on simnet, polling on
// wall-clock fabrics).
type fabric interface {
	platform() rdma.Platform
	addComputeNode() rdma.NodeID
	advance(d time.Duration)
	runUntil(cond func() bool) bool
	now() time.Duration
	close()
}

// simFabric drives the deterministic discrete-event engine.
type simFabric struct{ pl *simnet.Platform }

func (f *simFabric) platform() rdma.Platform     { return f.pl }
func (f *simFabric) addComputeNode() rdma.NodeID { return f.pl.AddComputeNode() }
func (f *simFabric) advance(d time.Duration)     { f.pl.Run(f.pl.Engine().Now() + d) }
func (f *simFabric) now() time.Duration          { return f.pl.Engine().Now() }
func (f *simFabric) close()                      { f.pl.Shutdown() }
func (f *simFabric) runUntil(cond func() bool) bool {
	eng := f.pl.Engine()
	limit := eng.Now() + time.Hour // virtual-time safety limit
	for !cond() && eng.Now() < limit {
		eng.Run(eng.Now() + time.Millisecond)
	}
	return cond()
}

// tcpFabric runs on the wall clock; time advances by itself, so
// driving it means sleeping and polling.
type tcpFabric struct {
	pl    *tcpnet.Platform
	start time.Time
}

func (f *tcpFabric) platform() rdma.Platform     { return f.pl }
func (f *tcpFabric) addComputeNode() rdma.NodeID { return f.pl.AddComputeNode() }
func (f *tcpFabric) advance(d time.Duration)     { time.Sleep(d) }
func (f *tcpFabric) now() time.Duration          { return time.Since(f.start) }
func (f *tcpFabric) close()                      { f.pl.Close() }
func (f *tcpFabric) runUntil(cond func() bool) bool {
	limit := time.Now().Add(60 * time.Second) // wall-clock safety limit
	for !cond() {
		if time.Now().After(limit) {
			return cond()
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// Option configures Open.
type Option func(*options)

type options struct {
	fabricName string
}

// Fabric names accepted by WithFabric.
const (
	FabricSim = "sim"
	FabricTCP = "tcp"
)

// WithFabric selects the fabric the cluster runs on: FabricSim (the
// deterministic simulated RDMA fabric; the default) or FabricTCP (the
// real TCP transport — every memory node serves a loopback listener,
// all verbs cross real sockets, time is the wall clock).
func WithFabric(name string) Option {
	return func(o *options) { o.fabricName = name }
}

// Cluster is one coding group plus whatever server machinery its
// fault-tolerance mode runs (Aceso: MN daemons and the master),
// running inside this process on either fabric.
type Cluster struct {
	fab     fabric
	ft      ftmode.Cluster
	cl      *core.Cluster // non-nil iff the mode is "aceso"
	started bool

	mu      sync.Mutex // guards pending/done (client bodies finish on goroutines)
	pending int
	done    int
}

// Open creates a cluster of cfg.Layout.NumMNs memory nodes running the
// fault-tolerance mode named by cfg.FTMode (empty = "aceso") on the
// fabric selected by the options (default: simulated). Call Start
// before running clients.
func Open(cfg Config, opts ...Option) (*Cluster, error) {
	o := options{fabricName: FabricSim}
	for _, opt := range opts {
		opt(&o)
	}
	var fab fabric
	switch o.fabricName {
	case FabricSim:
		fab = &simFabric{pl: simnet.New(simnet.DefaultConfig())}
	case FabricTCP:
		pl := tcpnet.NewGroup()
		pl.SetOptions(tcpnet.Options{
			OpTimeout:   time.Second,
			RetryBudget: 2 * time.Second,
			BackoffBase: time.Millisecond,
			BackoffMax:  50 * time.Millisecond,
		})
		fab = &tcpFabric{pl: pl, start: time.Now()}
	default:
		return nil, fmt.Errorf("aceso: unknown fabric %q (want %q or %q)", o.fabricName, FabricSim, FabricTCP)
	}
	ft, err := core.OpenFT(cfg, fab.platform())
	if err != nil {
		fab.close()
		return nil, err
	}
	c := &Cluster{fab: fab, ft: ft}
	if a, ok := ft.(interface{ Core() *core.Cluster }); ok {
		c.cl = a.Core()
	}
	return c, nil
}

// NewSimCluster creates a cluster on a fresh simulated fabric.
//
// Deprecated: use Open (the simulated fabric is the default).
func NewSimCluster(cfg Config) (*Cluster, error) { return Open(cfg) }

// NewTCPCluster creates the same coding group on the real TCP fabric,
// so failure injection exercises genuine connection teardown,
// reconnects and retry budgets.
//
// Deprecated: use Open with WithFabric(FabricTCP).
func NewTCPCluster(cfg Config) (*Cluster, error) { return Open(cfg, WithFabric(FabricTCP)) }

// core returns the underlying aceso-mode cluster, or panics with a
// clear message when the cluster runs another fault-tolerance mode:
// the caller reached for an Aceso-only surface.
func (c *Cluster) core() *core.Cluster {
	if c.cl == nil {
		panic(fmt.Sprintf("aceso: surface requires FTMode=%q, cluster runs %q (use the mode-generic API: RunKV/SpawnKV/Caps/Usage)", core.FTModeAceso, c.ft.Mode()))
	}
	return c.cl
}

// FTMode returns the cluster's fault-tolerance mode name.
func (c *Cluster) FTMode() string { return c.ft.Mode() }

// Caps reports which harness surfaces the cluster's mode implements.
func (c *Cluster) Caps() Caps { return c.ft.Caps() }

// Start launches the mode's server machinery. For Aceso that is the
// memory-node servers and the master (membership, checkpoint rounds,
// failure handling) with one spare MN provisioned for recovery; the
// replication modes install their handlers at Open and start nothing.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	if err := c.ft.Start(); err != nil {
		panic(fmt.Sprintf("aceso: start %s: %v", c.ft.Mode(), err))
	}
	c.started = true
}

// AddSpare provisions another idle memory node for recovery
// (Aceso mode only).
func (c *Cluster) AddSpare() { c.core().Master().AddSpare() }

// RunClient executes fn as a full Aceso client on its own compute node
// and drives time until fn returns (Aceso mode only — mode-generic
// callers use RunKV). It is the synchronous convenience wrapper; use
// SpawnClient to run several concurrently.
func (c *Cluster) RunClient(name string, fn func(*Client)) {
	var mu sync.Mutex
	done := false
	c.SpawnClient(name, func(cli *Client) {
		fn(cli)
		mu.Lock()
		done = true
		mu.Unlock()
	})
	c.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	})
}

// SpawnClient starts fn as a full Aceso client process without
// advancing time (Aceso mode only); combine with RunUntil or Wait.
func (c *Cluster) SpawnClient(name string, fn func(*Client)) {
	cl := c.core()
	cn := c.fab.addComputeNode()
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
	cl.SpawnClient(cn, name, func(cli *Client) {
		fn(cli)
		c.mu.Lock()
		c.done++
		c.mu.Unlock()
	})
}

// RunKV executes fn as a mode-generic client and drives time until fn
// returns. It works on every fault-tolerance mode.
func (c *Cluster) RunKV(name string, fn func(KV)) {
	var mu sync.Mutex
	done := false
	c.SpawnKV(name, func(cli KV) {
		fn(cli)
		mu.Lock()
		done = true
		mu.Unlock()
	})
	c.RunUntil(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return done
	})
}

// SpawnKV starts fn as a mode-generic client process without advancing
// time; combine with RunUntil or Wait. It works on every mode.
func (c *Cluster) SpawnKV(name string, fn func(KV)) {
	cn := c.fab.addComputeNode()
	c.mu.Lock()
	c.pending++
	c.mu.Unlock()
	c.ft.SpawnClient(cn, name, func(cli ftmode.Client) {
		fn(cli)
		c.mu.Lock()
		c.done++
		c.mu.Unlock()
	})
}

// Advance moves time forward by d (virtual on the simulated fabric, a
// real sleep on TCP).
func (c *Cluster) Advance(d time.Duration) { c.fab.advance(d) }

// RunUntil drives time until cond holds (or the fabric's safety limit
// passes: an hour of virtual time, a minute of wall clock). It reports
// whether cond held.
func (c *Cluster) RunUntil(cond func() bool) bool { return c.fab.runUntil(cond) }

// Wait drives time until every spawned client has returned.
func (c *Cluster) Wait() bool {
	return c.RunUntil(func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.done >= c.pending
	})
}

// Now returns the current time (virtual or wall, by fabric).
func (c *Cluster) Now() time.Duration { return c.fab.now() }

// FailMN injects a fail-stop crash of logical memory node mn. What
// happens next is the mode's story: Aceso's master detects it and runs
// tiered recovery onto a spare; the replication modes fail clients over
// to surviving replicas. On the TCP fabric this tears down the node's
// listener and live connections for real.
func (c *Cluster) FailMN(mn int) { c.ft.FailMN(mn) }

// SetChaos installs (or, with a zero config, clears) probabilistic
// drop/delay/reset injection on the node serving logical MN mn.
func (c *Cluster) SetChaos(mn int, cfg ChaosConfig) {
	if fi, ok := c.fab.platform().(rdma.FaultInjector); ok {
		// The replication modes pin MN i to fabric node i; Aceso's
		// mapping can shift when a spare takes over a logical MN.
		node := rdma.NodeID(mn)
		if c.cl != nil {
			node = c.cl.MNNode(mn)
		}
		fi.SetChaos(node, cfg)
	}
}

// MNState reports a memory node's recovery progress: failed (down),
// indexReady and blocksReady. Under tiered recovery (Aceso) the ready
// flags track the rebuild (tier 2: writes at full speed, reads
// degraded; tier 3: fully recovered); replication modes report
// !failed for both, since data never leaves the surviving replicas.
func (c *Cluster) MNState(mn int) (failed, indexReady, blocksReady bool) {
	return c.ft.MNState(mn)
}

// RecoveryReports returns the reports of completed MN recoveries
// (Aceso mode only).
func (c *Cluster) RecoveryReports() []*RecoveryReport {
	return c.core().Master().ReportList()
}

// Trace returns the cluster's trace events oldest-first: failure
// detections and per-tier recovery phase timings, stamped with the
// fabric clock (Aceso mode only).
func (c *Cluster) Trace() []TraceEvent { return c.core().Trace().Events() }

// MNStats snapshots the management-plane counters of logical MN mn
// (Aceso mode, in-process; remote daemons are queried with
// Client.StatsMN).
func (c *Cluster) MNStats(mn int) ServerStats { return c.core().Server(mn).Stats() }

// TransportStats returns the fabric's transport-level fault/retry
// counters (zero on the simulated fabric).
func (c *Cluster) TransportStats() TransportStats {
	if src, ok := c.fab.platform().(rdma.TransportStatsSource); ok {
		return src.TransportStats()
	}
	return TransportStats{}
}

// MemoryUsage scans the group's Block Areas (Figure 12 accounting;
// Aceso mode only — mode-generic callers use Usage).
func (c *Cluster) MemoryUsage() MemoryUsage { return c.core().MemoryUsage() }

// Usage is the mode-generic space accounting: the total block-area
// footprint, plus the valid/redundant split when the mode's Caps claim
// SpaceBreakdown.
func (c *Cluster) Usage() Usage { return c.ft.Usage() }

// Reclaimed returns how many blocks were handed out through
// delta-based space reclamation (§3.3.3; Aceso mode only).
func (c *Cluster) Reclaimed() int { return c.core().Reclaimed() }

// NumMNs returns the coding-group size.
func (c *Cluster) NumMNs() int { return c.ft.NumMNs() }

// Close unwinds the fabric. The cluster must not be used afterwards.
func (c *Cluster) Close() { c.fab.close() }

// Internal returns the underlying core cluster and platform for
// advanced instrumentation (benchmark harnesses; Aceso mode only).
func (c *Cluster) Internal() (*core.Cluster, rdma.Platform) { return c.core(), c.fab.platform() }

// InternalFT returns the underlying mode cluster and platform for
// mode-generic harnesses (bench experiments that drive every ftmode).
func (c *Cluster) InternalFT() (ftmode.Cluster, rdma.Platform) { return c.ft, c.fab.platform() }
